"""Tests for the ``repro`` command-line interface."""

import json

import pytest

from repro.api.cli import main
from repro.api.results import ExperimentResult, SweepResult


class TestList:
    def test_plain_listing(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table4" in out
        assert "alexnet" in out
        assert "paper-28nm" in out

    def test_listing_enumerates_workload_graphs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Every family appears, with graph structure per workload.
        assert "vit_tiny" in out and "transformer" in out
        assert "joins" in out and "nodes" in out

    def test_json_listing(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [spec["id"] for spec in payload["experiments"]][:3] == [
            "fig2a", "fig2b", "fig7",
        ]
        assert "dense-baseline" in payload["configs"]
        assert "vit_tiny" in payload["workloads"]
        by_name = {entry["name"]: entry for entry in payload["graphs"]}
        assert by_name["resnet18"]["joins"] == 8
        assert by_name["vit_tiny"]["family"] == "transformer"

    def test_listing_enumerates_engines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "engines:" in out
        assert "scalar" in out and "vectorized" in out and "trace" in out

    def test_json_listing_includes_engine_capabilities(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        engines = {entry["name"]: entry for entry in payload["engines"]}
        assert engines["vectorized"]["cycle_model"] is True
        assert engines["trace"]["cycle_model"] is False
        assert engines["trace"]["trace_class"] is True


class TestRun:
    def test_run_table4_prints_table_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "table4.json"
        assert main(["run", "table4", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Total" in out
        result = ExperimentResult.load(out_path)
        assert result.experiment == "table4"
        assert result.rows[-1].module == "Total"

    def test_run_fig7_with_models_json_stdout(self, capsys):
        assert main(["run", "fig7", "--models", "alexnet", "--json", "-", "--quiet"]) == 0
        result = ExperimentResult.from_json(capsys.readouterr().out)
        assert result.experiment == "fig7"
        assert [row.model for row in result.rows] == ["alexnet"]

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_model_exits_2(self, capsys):
        assert main(["run", "fig7", "--models", "no-such-net"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_models_flag_rejected_for_model_free_experiment(self, capsys):
        assert main(["run", "table4", "--models", "alexnet"]) == 2
        assert "does not take --models" in capsys.readouterr().err

    def test_epochs_flag_rejected_outside_table2(self, capsys):
        assert main(["run", "fig7", "--epochs", "3"]) == 2
        assert "does not take --epochs" in capsys.readouterr().err

    def test_workload_alias_selects_models(self, capsys):
        argv = ["run", "graph", "--workload", "vit_tiny", "--json", "-", "--quiet"]
        assert main(argv) == 0
        result = ExperimentResult.from_json(capsys.readouterr().out)
        assert result.experiment == "graph"
        assert [row.model for row in result.rows] == ["vit_tiny"]
        assert result.rows[0].family == "transformer"
        assert result.rows[0].joins > 0

    def test_unknown_workload_via_alias_exits_2(self, capsys):
        assert main(["run", "graph", "--workload", "vgg99"]) == 2
        err = capsys.readouterr().err
        assert "repro: error" in err and "unknown workload" in err

    def test_trace_engine_rejected_outside_program(self, capsys):
        assert main(["run", "fig7", "--engine", "trace"]) == 2
        assert "only" in capsys.readouterr().err

    def test_unknown_engine_exits_2_with_suggestion(self, capsys):
        assert main(["run", "fig7", "--engine", "vectorised"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "did you mean: vectorized" in err

    def test_unknown_engine_lists_registry(self, capsys):
        assert main(["run", "fig7", "--engine", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "scalar" in err and "vectorized" in err and "trace" in err

    def test_absent_engine_exits_2_with_install_hint(self, capsys):
        from repro.sim.engines import jit as jit_module

        if jit_module.NUMBA_AVAILABLE:
            pytest.skip("numba installed: jit is a real engine here")
        assert main(["run", "fig7", "--engine", "jit"]) == 2
        err = capsys.readouterr().err
        assert "not installed" in err
        assert jit_module.JIT_INSTALL_HINT in err

    def test_list_reports_engine_availability(self, capsys):
        from repro.sim.engines import absent_engines

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name, hint in absent_engines().items():
            assert f"{name}" in out and "unavailable" in out and hint in out

    def test_list_json_reports_engine_availability(self, capsys):
        from repro.sim.engines import absent_engines, engine_names

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload["engines"]}
        for name in engine_names():
            assert by_name[name]["available"] is True
        for name, hint in absent_engines().items():
            assert by_name[name]["available"] is False
            assert by_name[name]["install_hint"] == hint

    def test_program_runs_transformer_workload(self, capsys):
        argv = [
            "run", "program", "--workload", "transformer_tiny",
            "--engine", "trace", "--json", "-", "--quiet",
        ]
        assert main(argv) == 0
        result = ExperimentResult.from_json(capsys.readouterr().out)
        (row,) = result.rows
        assert row.model == "transformer_tiny"
        assert row.max_relative_error <= 1e-4


class TestSweep:
    def test_sweep_writes_json_and_uses_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        out_path = tmp_path / "sweep.json"
        argv = [
            "sweep",
            "--experiments", "table1", "table4",
            "--cache-dir", str(cache_dir),
            "--json", str(out_path),
            "--quiet",
        ]
        assert main(argv) == 0
        sweep = SweepResult.load(out_path)
        assert sweep.cache_misses == 2 and sweep.cache_hits == 0
        assert main(argv) == 0
        warm = SweepResult.load(out_path)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.results == sweep.results

    def test_sweep_caches_transformer_program_points(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep",
            "--experiments", "program", "graph",
            "--models", "vit_tiny",
            "--cache-dir", str(cache_dir),
            "--quiet",
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # warm cache: no recompute
        out_path = tmp_path / "sweep.json"
        assert main(argv + ["--json", str(out_path)]) == 0
        sweep = SweepResult.load(out_path)
        assert sweep.cache_hits == 2 and sweep.cache_misses == 0
        assert {r.experiment for r in sweep.results} == {"program", "graph"}
        assert all(r.params["models"] == ["vit_tiny"] for r in sweep.results)

    def test_sweep_rejects_non_cycle_model_engine(self, capsys):
        # The sweep grid only runs cycle-model engines: 'trace' is a
        # registered engine but not a candidate here.
        assert main(["sweep", "--experiments", "table4",
                     "--engine", "trace"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "scalar" in err and "vectorized" in err

    def test_sweep_unknown_engine_suggests(self, capsys):
        assert main(["sweep", "--experiments", "table4",
                     "--engine", "scaler"]) == 2
        assert "did you mean: scalar" in capsys.readouterr().err

    def test_sweep_prints_sections(self, capsys):
        assert main(["sweep", "--experiments", "table4"]) == 0
        out = capsys.readouterr().out
        assert "--- table4" in out
        assert "1 result(s)" in out
        assert "executor=thread" in out  # service stats line

    def test_sweep_executor_backends_agree(self, capsys, tmp_path):
        results = {}
        for executor in ("serial", "thread", "process"):
            out_path = tmp_path / f"{executor}.json"
            argv = [
                "sweep", "--experiments", "fig7", "--models", "alexnet",
                "--executor", executor, "--json", str(out_path), "--quiet",
            ]
            assert main(argv) == 0
            results[executor] = SweepResult.load(out_path)
        assert results["serial"] == results["thread"] == results["process"]

    def test_sweep_journal_and_resume(self, capsys, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        out_path = tmp_path / "sweep.json"
        base = [
            "sweep", "--experiments", "fig7", "table4", "--models", "alexnet",
            "--executor", "serial", "--shards", "2",
            "--journal", str(journal), "--quiet",
        ]
        assert main(base + ["--json", str(out_path)]) == 0
        first = SweepResult.load(out_path)
        assert journal.exists()
        assert main(base + ["--resume", "--json", str(out_path)]) == 0
        resumed = SweepResult.load(out_path)
        assert resumed == first  # byte-identical payload, nothing recomputed

    def test_sweep_resume_requires_journal(self, capsys):
        assert main(["sweep", "--experiments", "table4", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_sweep_rejects_bad_shards_and_workers(self, capsys):
        assert main(["sweep", "--experiments", "table4", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["sweep", "--experiments", "table4", "--max-workers", "0"]) == 2
        assert "--max-workers" in capsys.readouterr().err


class TestDidYouMean:
    def test_misspelled_experiment_suggests_and_exits_2(self, capsys):
        assert main(["run", "tabel4"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "table4" in err
        assert "did you mean" in err

    def test_misspelled_config_suggests_and_exits_2(self, capsys):
        assert main(["run", "table4", "--config", "paper-28mn"]) == 2
        err = capsys.readouterr().err
        assert "unknown config preset" in err and "paper-28nm" in err
        assert "did you mean" in err

    def test_misspelled_workload_suggests_and_exits_2(self, capsys):
        assert main(["run", "fig7", "--models", "alexnt"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "alexnet" in err
        assert "did you mean" in err

    def test_sweep_misspelled_experiment_suggests(self, capsys):
        assert main(["sweep", "--experiments", "fig7", "grap"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "graph" in err

    def test_sweep_misspelled_config_suggests(self, capsys):
        assert main(["sweep", "--experiments", "table4",
                     "--configs", "dense-baselin"]) == 2
        err = capsys.readouterr().err
        assert "unknown config preset" in err and "dense-baseline" in err

    def test_unrelated_name_lists_available(self, capsys):
        assert main(["run", "zzz"]) == 2
        err = capsys.readouterr().err
        assert "available:" in err and "fig7" in err
