"""Tests for the config registry, presets and builder helpers."""

import dataclasses

import pytest

from repro.api.configs import (
    DEFAULT_CONFIG,
    build_dbpim_config,
    build_fta_config,
    config_digest,
    config_name,
    config_to_dict,
    get_config,
    list_configs,
    register_config,
)
from repro.arch.config import DBPIMConfig


class TestRegistry:
    def test_default_preset_is_paper_config(self):
        assert get_config() == DBPIMConfig()
        assert get_config(None) == get_config(DEFAULT_CONFIG)

    def test_builtin_presets_registered(self):
        names = list_configs()
        for expected in (
            "paper-28nm",
            "dense-baseline",
            "weight-sparsity-only",
            "input-sparsity-only",
        ):
            assert expected in names

    def test_instance_passthrough(self):
        config = DBPIMConfig(num_macros=2)
        assert get_config(config) is config

    def test_unknown_preset_raises_with_available_names(self):
        with pytest.raises(KeyError, match="paper-28nm"):
            get_config("no-such-preset")

    def test_register_rejects_duplicates_and_non_configs(self):
        with pytest.raises(ValueError, match="already registered"):
            register_config("paper-28nm", DBPIMConfig())
        with pytest.raises(TypeError):
            register_config("bogus", object())

    def test_preset_immutability(self):
        preset = get_config("paper-28nm")
        with pytest.raises(dataclasses.FrozenInstanceError):
            preset.num_macros = 8
        with pytest.raises(dataclasses.FrozenInstanceError):
            preset.macro.rows = 128

    def test_dense_baseline_preset_disables_sparsity(self):
        dense = get_config("dense-baseline")
        assert not dense.weight_sparsity and not dense.input_sparsity

    def test_config_name_roundtrip_and_custom_tag(self):
        assert config_name("dense-baseline") == "dense-baseline"
        # An equal instance resolves back to the preset name.
        assert config_name(DBPIMConfig()) == "paper-28nm"
        custom = DBPIMConfig(num_macros=3)
        assert config_name(custom).startswith("custom-")


class TestDigest:
    def test_digest_is_stable_and_content_sensitive(self):
        assert config_digest() == config_digest(DBPIMConfig())
        assert config_digest(DBPIMConfig(num_macros=8)) != config_digest()
        fta = build_fta_config(max_threshold=1)
        assert config_digest(fta_config=fta) != config_digest()

    def test_dict_form_is_nested_and_plain(self):
        payload = config_to_dict()
        assert payload["num_macros"] == 4
        assert payload["macro"]["rows"] == 64
        assert payload["buffers"]["feature_buffer"] == 128 * 1024


class TestBuilders:
    def test_build_dbpim_config_flat_knobs(self):
        config = build_dbpim_config(num_macros=8, input_group=32, frequency_mhz=400.0)
        assert config.num_macros == 8
        assert config.macro.input_group == 32
        assert config.clock.frequency_mhz == 400.0

    def test_build_dbpim_config_validates_geometry(self):
        with pytest.raises(ValueError):
            build_dbpim_config(columns=10, weight_bits=8)
        with pytest.raises(ValueError):
            build_dbpim_config(num_macros=0)

    def test_build_fta_config_validates(self):
        assert build_fta_config(max_threshold=1).max_threshold == 1
        with pytest.raises(ValueError):
            build_fta_config(max_threshold=-1)
