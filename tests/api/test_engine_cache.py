"""Engine selection across the façade: cache keys, sweeps and run_batch.

The cycle-model engine (scalar reference vs vectorized kernel) must be part
of every sweep point's cache identity -- mixing engines over one cache
directory must never serve one engine's entry to the other -- while the
results themselves stay bitwise identical.
"""

import pytest

from repro.api import Experiment, build_grid, run_sweep
from repro.api.sweep import SweepPoint
from repro.sim.cycle_model import SPARSITY_VARIANTS


class TestEngineCacheKey:
    def test_engine_is_part_of_the_cache_key(self):
        vectorized = SweepPoint(experiment="fig7", engine="vectorized")
        scalar = SweepPoint(experiment="fig7", engine="scalar")
        assert vectorized.cache_key() != scalar.cache_key()
        # Same engine, same point -> stable key.
        assert (
            SweepPoint(experiment="fig7", engine="scalar").cache_key()
            == scalar.cache_key()
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepPoint(experiment="fig7", engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            build_grid(experiments=("table4",), engine="warp")

    def test_build_grid_threads_engine_to_every_point(self):
        grid = build_grid(
            experiments=("fig7", "table4"), models=("alexnet",), engine="scalar"
        )
        assert grid and all(point.engine == "scalar" for point in grid)


class TestMixedEngineSweeps:
    def test_mixed_engines_share_a_cache_without_collisions(self, tmp_path):
        cache_dir = tmp_path / "cache"
        kwargs = dict(
            experiments=("fig7",), models=("alexnet",), cache_dir=cache_dir
        )
        scalar_cold = run_sweep(engine="scalar", **kwargs)
        assert scalar_cold.cache_misses == 1
        # The other engine must not hit the scalar entry ...
        vector_cold = run_sweep(engine="vectorized", **kwargs)
        assert vector_cold.cache_misses == 1 and vector_cold.cache_hits == 0
        # ... but both engines' own entries are warm afterwards,
        scalar_warm = run_sweep(engine="scalar", **kwargs)
        vector_warm = run_sweep(engine="vectorized", **kwargs)
        assert scalar_warm.cache_hits == 1 and scalar_warm.cache_misses == 0
        assert vector_warm.cache_hits == 1 and vector_warm.cache_misses == 0
        # ... and the engines agree bitwise on the results themselves.
        assert scalar_cold.results == vector_cold.results
        assert len(list(cache_dir.glob("*.json"))) == 2


class TestExperimentEngine:
    def test_engine_recorded_and_validated(self):
        assert Experiment().engine == "vectorized"
        assert "engine='scalar'" in repr(Experiment(engine="scalar"))
        with pytest.raises(ValueError, match="unknown engine"):
            Experiment(engine="warp")

    def test_with_config_preserves_engine(self):
        session = Experiment(engine="scalar")
        assert session.with_config("dense-baseline").engine == "scalar"

    def test_run_batch_grid_shape_and_values(self):
        session = Experiment()
        grid = session.run_batch(models=("alexnet",))
        assert set(grid) == {"alexnet"}
        assert set(grid["alexnet"]) == set(SPARSITY_VARIANTS)
        runs = session.run_variants("alexnet")
        for variant in SPARSITY_VARIANTS:
            assert (
                grid["alexnet"][variant].total_cycles
                == runs[variant].total_cycles
            )

    def test_run_batch_matches_scalar_session(self):
        vectorized = Experiment().run_batch(models=("mobilenetv2",))
        scalar = Experiment(engine="scalar").run_batch(models=("mobilenetv2",))
        for variant in SPARSITY_VARIANTS:
            v = vectorized["mobilenetv2"][variant]
            s = scalar["mobilenetv2"][variant]
            assert v.total_cycles == s.total_cycles
            assert v.total_energy_pj == s.total_energy_pj

    def test_run_batch_rejects_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            Experiment().run_batch(models=("alexnet",), variants=("bogus",))

    def test_run_batch_subset_of_variants(self):
        grid = Experiment().run_batch(
            models=("alexnet",), variants=("base", "hybrid")
        )
        assert list(grid["alexnet"]) == ["base", "hybrid"]
