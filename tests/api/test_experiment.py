"""Tests for the Experiment façade: error paths, dispatch, and the
side-by-side regression against the historical driver functions."""

import pytest

from repro.api import Experiment, Session, get_experiment_spec, list_experiments
from repro.api.results import ExperimentResult
from repro.arch.config import DBPIMConfig
from repro.sim.cycle_model import LayerPerformance, ModelPerformance


class TestErrorPaths:
    def test_unknown_workload_lists_available(self):
        with pytest.raises(KeyError, match="alexnet"):
            Experiment().speedup_energy(["no-such-net"])

    def test_empty_model_list_rejected(self):
        with pytest.raises(ValueError, match="empty model list"):
            Experiment().speedup_energy([])
        with pytest.raises(ValueError, match="empty model list"):
            Experiment().run("fig2a", models=())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="fig7"):
            Experiment().run("fig99")

    def test_unexpected_parameters_rejected(self):
        with pytest.raises(TypeError, match="unexpected parameters"):
            Experiment().run("table4", models=["alexnet"])
        with pytest.raises(TypeError, match="unexpected parameters"):
            Experiment().run("fig7", epochs=3)

    def test_unknown_config_preset_rejected(self):
        with pytest.raises(KeyError, match="paper-28nm"):
            Experiment(config="no-such-preset")

    def test_unknown_layer_rejected(self):
        with pytest.raises(KeyError, match="conv1"):
            Experiment().run_layer("alexnet", "no-such-layer")


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [spec.id for spec in list_experiments()]
        assert ids == [
            "fig2a", "fig2b", "fig7", "table1", "table2", "table3", "table4",
            "program", "graph",
        ]

    def test_spec_lookup_is_case_insensitive(self):
        assert get_experiment_spec("FIG7").id == "fig7"


class TestUniformEntryPoints:
    def test_run_layer_and_run_model_dispatch(self):
        session = Experiment(seed=0)
        layer = session.run_layer("alexnet", 0, variant="hybrid")
        assert isinstance(layer, LayerPerformance)
        by_name = session.run_layer("alexnet", "conv1", variant="hybrid")
        assert by_name.layer.name == "conv1"
        model = session.run_model("alexnet", variant="base")
        assert isinstance(model, ModelPerformance)
        assert model.total_cycles > 0

    def test_run_variants_and_profile_cache(self):
        session = Experiment(seed=0)
        runs = session.run_variants("alexnet")
        assert set(runs) == {"base", "input", "weight", "hybrid"}
        assert session.profile("alexnet") is session.profile("alexnet")

    def test_execute_linear_matches_variant_configs(self):
        import numpy as np

        rng = np.random.default_rng(0)
        weights = rng.integers(-40, 40, size=(8, 64))
        inputs = rng.integers(0, 128, size=64)
        session = Experiment(seed=0)
        dense = session.execute_linear(weights, inputs, variant="base")
        hybrid = session.execute_linear(weights, inputs, variant="hybrid")
        # The dense path stores the exact weights.
        assert np.array_equal(dense.outputs, weights @ inputs)
        assert hybrid.cycles < dense.cycles

    def test_session_alias(self):
        assert Session is Experiment

    def test_model_casing_is_preserved_in_rows(self):
        rows = Experiment(seed=0).weight_sparsity(["AlexNet"])
        assert rows[0].model == "AlexNet"

    def test_with_config_shares_profile_cache(self):
        base = Experiment(seed=0)
        base.profile("alexnet")
        scaled = base.with_config("paper-28nm-8macro")
        assert scaled.config.num_macros == 8
        assert scaled.profile("alexnet") is base.profile("alexnet")

    def test_with_config_reprofiles_on_input_group_change(self):
        from repro.api import build_dbpim_config

        base = Experiment(seed=0)
        base.profile("alexnet")
        regrouped = base.with_config(build_dbpim_config(input_group=8))
        assert regrouped.input_group == 8
        assert regrouped.profile("alexnet") is not base.profile("alexnet")

    def test_nonpositive_input_group_rejected(self):
        with pytest.raises(ValueError, match="input_group"):
            Experiment(input_group=0)

    def test_empty_accuracy_table_wrapper_keeps_legacy_behaviour(self):
        from repro.eval.table2_accuracy import accuracy_table

        assert accuracy_table(models=()) == []


class TestFacadeMatchesLegacyDrivers:
    """Old wrapper and new façade must produce numerically identical rows."""

    def test_fig2a(self):
        from repro.eval.fig2_sparsity import weight_sparsity_table

        old = weight_sparsity_table(models=("alexnet",), seed=0)
        new = Experiment(seed=0).run("fig2a", models=["alexnet"])
        assert list(new.rows) == old

    def test_fig2b(self):
        from repro.eval.fig2_sparsity import input_sparsity_table

        old = input_sparsity_table(models=("alexnet",), seed=0)
        new = Experiment(seed=0).run("fig2b", models=["alexnet"])
        assert list(new.rows) == old

    def test_fig7(self):
        from repro.eval.fig7_speedup_energy import speedup_energy_table

        old = speedup_energy_table(models=("alexnet",), seed=0)
        new = Experiment(seed=0).run("fig7", models=["alexnet"])
        assert list(new.rows) == old

    def test_table1(self):
        from repro.eval.table1_related import related_work_table

        old = related_work_table()
        new = Experiment().run("table1")
        assert list(new.rows) == old
        old_weight_only = related_work_table(DBPIMConfig().weight_sparsity_only())
        new_weight_only = Experiment(config="weight-sparsity-only").run("table1")
        assert list(new_weight_only.rows) == old_weight_only

    def test_table2(self):
        from repro.eval.table2_accuracy import evaluate_model_accuracy

        old = evaluate_model_accuracy("alexnet", epochs=2, qat_epochs=0, seed=0)
        new = Experiment(seed=0).run("table2", models=["alexnet"], epochs=2, qat_epochs=0)
        assert list(new.rows) == [old]

    def test_table3(self):
        from repro.eval.table3_comparison import comparison_table

        old = comparison_table(models=("alexnet",), seed=0)
        new = Experiment(seed=0).run("table3", models=["alexnet"])
        assert list(new.rows) == old

    def test_table4(self):
        from repro.eval.table4_area import area_table

        old = area_table()
        new = Experiment().run("table4")
        assert list(new.rows) == old

    def test_results_round_trip_through_json(self):
        result = Experiment(seed=0).run("fig7", models=["alexnet"])
        assert ExperimentResult.from_json(result.to_json()) == result


class TestSeedThreading:
    def test_one_seed_moves_every_stage(self):
        rows_seed0 = Experiment(seed=0).weight_sparsity(["alexnet"])
        rows_seed0_again = Experiment(seed=0).weight_sparsity(["alexnet"])
        rows_seed1 = Experiment(seed=1).weight_sparsity(["alexnet"])
        assert rows_seed0 == rows_seed0_again
        assert rows_seed0 != rows_seed1

    def test_result_envelope_records_seed_and_config(self):
        result = Experiment(seed=3).run("table4")
        assert result.seed == 3
        assert result.config == "paper-28nm"
