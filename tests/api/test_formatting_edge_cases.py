"""Edge cases of the text formatters: empty sweeps/rows and NaN metrics."""

import math

from repro.api.formatting import (
    format_accuracy,
    format_input_sparsity,
    format_result,
    format_speedup_energy,
    format_sweep,
    format_weight_sparsity,
)
from repro.api.results import (
    AccuracyRow,
    ExperimentResult,
    InputSparsityRow,
    SparsityBenefitRow,
    SweepResult,
    WeightSparsityRow,
)


class TestEmptyInputs:
    def test_empty_sweep_renders_summary_only(self):
        sweep = SweepResult(results=())
        text = format_sweep(sweep)
        assert "0 result(s)" in text
        assert "0 hit(s)" in text and "0 miss(es)" in text

    def test_empty_rows_render_headers_or_nothing(self):
        # Header-only output for the fixed-column tables ...
        assert format_weight_sparsity([]).splitlines() == [
            format_weight_sparsity([]).splitlines()[0]
        ]
        assert format_speedup_energy([]).count("\n") == 0
        assert format_accuracy([]).count("\n") == 0
        # ... and nothing at all when the columns depend on the rows.
        assert format_input_sparsity([]) == ""

    def test_empty_experiment_result_formats(self):
        result = ExperimentResult(experiment="fig7", rows=())
        assert format_result(result).startswith("Model")
        # An empty-result sweep still renders every section header.
        sweep = SweepResult(results=(result,))
        assert "--- fig7" in format_sweep(sweep)


class TestNaNMetrics:
    def test_nan_speedup_row_renders(self):
        nan = float("nan")
        row = SparsityBenefitRow(
            model="alexnet",
            speedup={"input": nan, "weight": nan, "hybrid": nan},
            energy_saving={"input": nan, "weight": nan, "hybrid": nan},
            utilization={"base": nan},
        )
        text = format_speedup_energy([row])
        assert "alexnet" in text and "nan" in text

    def test_nan_rows_round_trip_through_json(self):
        nan = float("nan")
        result = ExperimentResult(
            experiment="fig2a",
            rows=(
                WeightSparsityRow(
                    model="alexnet",
                    binary_zero_ratio=nan,
                    csd_zero_ratio=0.5,
                    fta_zero_ratio=1.0,
                ),
            ),
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert math.isnan(restored.rows[0].binary_zero_ratio)
        assert restored.rows[0].csd_zero_ratio == 0.5
        assert "alexnet" in format_result(restored)

    def test_nan_accuracy_drop_renders(self):
        row = AccuracyRow(
            model="vgg19",
            float_accuracy=float("nan"),
            int8_accuracy=float("nan"),
            fta_accuracy=float("nan"),
        )
        assert math.isnan(row.accuracy_drop)
        assert "vgg19" in format_accuracy([row])

    def test_mixed_group_sizes_render_first_rows_columns(self):
        rows = [
            InputSparsityRow(model="alexnet", zero_column_ratio={1: 0.1, 8: 0.4}),
            InputSparsityRow(
                model="vgg19", zero_column_ratio={1: 0.2, 8: float("nan")}
            ),
        ]
        text = format_input_sparsity(rows)
        assert "group 1" in text and "group 8" in text
        assert "nan" in text
