"""Tests for the ``program`` experiment: façade, CLI, sweep and caching."""

import pytest

from repro.api import Experiment, ExperimentResult, run_sweep
from repro.api.cli import main
from repro.api.results import ProgramRow, row_from_dict, row_to_dict
from repro.sim.cycle_model import SPARSITY_VARIANTS
from repro.sim.trace import TRACE_TOLERANCE


@pytest.fixture(scope="module")
def session():
    return Experiment(seed=0)


@pytest.fixture(scope="module")
def result(session):
    return session.run("program", models=["alexnet"])


class TestFacade:
    def test_rows_cover_every_variant(self, result):
        assert result.experiment == "program"
        (row,) = result.rows
        assert isinstance(row, ProgramRow)
        assert row.model == "alexnet"
        for mapping in (
            row.instructions,
            row.segments,
            row.trace_cycles,
            row.analytical_cycles,
            row.scheduled_cycles,
            row.hidden_fraction,
        ):
            assert set(mapping) == set(SPARSITY_VARIANTS)

    def test_trace_matches_analytical_within_tolerance(self, result):
        (row,) = result.rows
        assert row.max_relative_error <= TRACE_TOLERANCE
        for variant in SPARSITY_VARIANTS:
            assert row.trace_cycles[variant] == pytest.approx(
                row.analytical_cycles[variant], rel=TRACE_TOLERANCE
            )
            # Scheduling only ever adds non-hidden load/SIMD/tail cycles.
            assert row.scheduled_cycles[variant] >= row.trace_cycles[variant]
            assert 0.0 <= row.hidden_fraction[variant] < 1.0

    def test_compiled_models_are_memoised(self, session):
        first = session.compile_model("alexnet", "hybrid")
        assert session.compile_model("alexnet", "hybrid") is first
        assert session.compile_model("alexnet", "base") is not first

    def test_trace_model_entry_point(self, session):
        trace = session.trace_model("alexnet", "hybrid")
        assert trace.name == "alexnet"
        assert trace.compute_cycles > 0

    def test_row_round_trips_through_json(self, result):
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        (row,) = result.rows
        assert row_from_dict("program", row_to_dict(row)) == row


class TestSweepIntegration:
    def test_program_points_cache_and_reload(self, tmp_path):
        cache_dir = tmp_path / "cache"
        kwargs = dict(
            experiments=("program",), models=("alexnet",), cache_dir=cache_dir
        )
        cold = run_sweep(**kwargs)
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        warm = run_sweep(**kwargs)
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert warm.results == cold.results
        (row,) = warm.results[0].rows
        assert row.max_relative_error <= TRACE_TOLERANCE


class TestCLI:
    def test_run_program_prints_table_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "program.json"
        code = main(
            ["run", "program", "--models", "alexnet", "--json", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace Mcyc" in out and "alexnet" in out
        loaded = ExperimentResult.load(out_path)
        assert loaded.experiment == "program"

    def test_engine_trace_accepted_for_program(self, capsys):
        code = main(
            ["run", "program", "--models", "alexnet", "--engine", "trace", "--quiet"]
        )
        assert code == 0

    def test_engine_trace_rejected_elsewhere(self, capsys):
        assert main(["run", "fig7", "--engine", "trace"]) == 2
        err = capsys.readouterr().err
        assert "only" in err and "program" in err
