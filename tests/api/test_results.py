"""Tests for the typed result schema and its JSON round-trips."""

import pytest

from repro.api.results import (
    SCHEMA_VERSION,
    AccuracyRow,
    AreaRow,
    ComparisonColumn,
    ExperimentResult,
    InputSparsityRow,
    SparsityBenefitRow,
    SweepResult,
    row_from_dict,
    row_to_dict,
)


def _fig7_result() -> ExperimentResult:
    row = SparsityBenefitRow(
        model="alexnet",
        speedup={"input": 1.4, "weight": 6.7, "hybrid": 9.5},
        energy_saving={"input": 0.27, "weight": 0.77, "hybrid": 0.81},
        utilization={"base": 0.3, "input": 0.3, "weight": 0.8, "hybrid": 0.8},
    )
    return ExperimentResult(
        experiment="fig7",
        rows=(row,),
        params={"models": ("alexnet",)},
        seed=7,
        config="paper-28nm",
    )


class TestRowConversion:
    def test_int_keyed_mapping_survives_json(self):
        row = InputSparsityRow(model="vgg19", zero_column_ratio={1: 0.9, 8: 0.5, 16: 0.3})
        payload = row_to_dict(row)
        assert set(payload["zero_column_ratio"]) == {"1", "8", "16"}
        assert row_from_dict("fig2b", payload) == row

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="fig2a"):
            row_from_dict("fig99", {})

    def test_accuracy_drop_derived_property(self):
        row = AccuracyRow("alexnet", 0.9, 0.85, 0.84)
        assert row.accuracy_drop == pytest.approx(0.01)
        restored = row_from_dict("table2", row_to_dict(row))
        assert restored.accuracy_drop == pytest.approx(0.01)


class TestExperimentResult:
    def test_json_round_trip_is_lossless(self):
        result = _fig7_result()
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_round_trip_all_row_shapes(self):
        cases = {
            "table4": (AreaRow("Total", 1.15453, 1.0),),
            "table3": (
                ComparisonColumn(
                    design="X", technology_nm=28, die_area_mm2=1.0,
                    sram_size_kb=280.0, pim_size_kb=8.0, num_macros=4,
                    actual_utilization={"resnet18": 0.8},
                    peak_throughput_tops=1.0, peak_gops_per_macro=250.0,
                    energy_efficiency_tops_w=20.0, efficiency_per_area=17.0,
                ),
            ),
        }
        for experiment, rows in cases.items():
            result = ExperimentResult(experiment=experiment, rows=rows)
            assert ExperimentResult.from_json(result.to_json()) == result

    def test_params_are_canonicalised_to_json_types(self):
        result = _fig7_result()
        # Tuples become lists at construction time, so equality with the
        # deserialised form holds structurally.
        assert result.params == {"models": ["alexnet"]}

    def test_schema_version_mismatch_rejected(self):
        payload = _fig7_result().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.from_dict(payload)

    def test_results_are_hashable_and_equality_consistent(self):
        first, second = _fig7_result(), _fig7_result()
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1
        assert hash(SweepResult(results=(first,))) == hash(SweepResult(results=(second,)))

    def test_save_load(self, tmp_path):
        result = _fig7_result()
        path = result.save(tmp_path / "fig7.json")
        assert ExperimentResult.load(path) == result


class TestSweepResult:
    def test_json_round_trip_with_cache_stats(self):
        sweep = SweepResult(
            results=(_fig7_result(),), cache_hits=3, cache_misses=1
        )
        restored = SweepResult.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.cache_hits == 3 and restored.cache_misses == 1

    def test_filter_by_experiment(self):
        sweep = SweepResult(results=(_fig7_result(),))
        assert len(sweep.filter("fig7")) == 1
        assert sweep.filter("table4") == []
