"""Tests for the parallel sweep runner and its on-disk result cache."""

import pytest

import repro.api.sweep as sweep_module
from repro.api import ExperimentResult, SweepResult, build_grid, run_sweep
from repro.api.sweep import SweepPoint, run_point


class TestGrid:
    def test_model_parameterised_experiments_split_per_model(self):
        grid = build_grid(
            experiments=("fig7", "table4"), models=("alexnet", "vgg19")
        )
        fig7_points = [p for p in grid if p.experiment == "fig7"]
        table4_points = [p for p in grid if p.experiment == "table4"]
        assert [p.params["models"] for p in fig7_points] == [["alexnet"], ["vgg19"]]
        assert len(table4_points) == 1 and table4_points[0].params == {}

    def test_table3_keeps_model_list_in_one_point(self):
        # Table 3 aggregates across models (max TOPS/W, joint utilization
        # dict), so splitting it per model would change the DB-PIM column.
        grid = build_grid(experiments=("table3",), models=("alexnet", "vgg19"))
        assert len(grid) == 1
        assert grid[0].params == {"models": ["alexnet", "vgg19"]}

    def test_table3_sweep_matches_direct_run(self):
        from repro.api import Experiment

        sweep = run_sweep(experiments=("table3",), models=("alexnet",))
        direct = Experiment(seed=0).run("table3", models=["alexnet"])
        assert sweep.results[0] == direct

    def test_grid_crosses_configs_and_seeds(self):
        grid = build_grid(
            experiments=("table4",),
            configs=("paper-28nm", "dense-baseline"),
            seeds=(0, 1),
        )
        assert len(grid) == 4
        assert {(p.config, p.seed) for p in grid} == {
            ("paper-28nm", 0), ("paper-28nm", 1),
            ("dense-baseline", 0), ("dense-baseline", 1),
        }

    def test_unknown_inputs_rejected_eagerly(self):
        with pytest.raises(KeyError):
            build_grid(experiments=("fig99",))
        with pytest.raises(KeyError):
            build_grid(experiments=("table4",), configs=("no-such-preset",))
        with pytest.raises(KeyError):
            build_grid(experiments=("fig7",), models=("no-such-net",))
        with pytest.raises(ValueError, match="empty model list"):
            build_grid(experiments=("fig7",), models=())

    def test_cache_key_depends_on_config_contents_and_seed(self):
        point = SweepPoint(experiment="table4")
        assert point.cache_key() == SweepPoint(experiment="table4").cache_key()
        assert point.cache_key() != SweepPoint(experiment="table4", seed=1).cache_key()
        assert (
            point.cache_key()
            != SweepPoint(experiment="table4", config="dense-baseline").cache_key()
        )


class TestSweepExecution:
    def test_parallel_fig7_grid_with_cache(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        kwargs = dict(
            experiments=("fig7",),
            models=("alexnet", "mobilenetv2"),
            max_workers=2,
            cache_dir=cache_dir,
        )
        cold = run_sweep(**kwargs)
        assert len(cold) == 2
        assert cold.cache_hits == 0 and cold.cache_misses == 2
        assert len(list(cache_dir.glob("*.json"))) == 2

        # Warm re-run: every point must come from the cache without
        # executing any simulation -- instrument by making Experiment
        # construction (the only path into the simulator) explode.
        def _boom(*args, **kwargs):
            raise AssertionError("simulation executed on a warm cache")

        monkeypatch.setattr(sweep_module, "Experiment", _boom)
        warm = run_sweep(**kwargs)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.results == cold.results

    def test_corrupt_cache_entry_treated_as_miss(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(experiments=("table4",), cache_dir=cache_dir)
        entry = next(cache_dir.glob("*.json"))
        entry.write_text("garbage{{{", encoding="utf-8")
        recovered = run_sweep(experiments=("table4",), cache_dir=cache_dir)
        assert recovered.cache_misses == 1 and recovered.cache_hits == 0
        # The corrupt entry was overwritten with a valid result.
        warm = run_sweep(experiments=("table4",), cache_dir=cache_dir)
        assert warm.cache_hits == 1 and warm.cache_misses == 0

    def test_cache_miss_on_seed_change(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_sweep(
            experiments=("table4",), seeds=(0,), cache_dir=cache_dir
        )
        second = run_sweep(
            experiments=("table4",), seeds=(1,), cache_dir=cache_dir
        )
        assert first.cache_misses == 1
        assert second.cache_misses == 1  # different key, no false hit

    def test_run_point_without_cache_dir(self):
        result, hit = run_point(SweepPoint(experiment="table1"))
        assert isinstance(result, ExperimentResult)
        assert not hit
        assert result.rows[-1].design == "DB-PIM (Ours)"

    def test_sweep_result_round_trip(self, tmp_path):
        sweep = run_sweep(experiments=("table1", "table4"), max_workers=2)
        assert isinstance(sweep, SweepResult)
        assert SweepResult.from_json(sweep.to_json()) == sweep
