"""Tests for the sharded sweep service: planning, executors, journal.

The sweep cache / grid basics are covered by ``test_sweep.py``; this module
pins the service layer added on top -- deterministic shard planning keyed by
cache state, process/thread/serial result equality, resume-from-journal
after a simulated interruption, per-point failure attribution and
cache-corruption recovery.
"""

import json
import os
import subprocess
import sys

import pytest

import repro.api.sweep as sweep_module
from repro.api import (
    Experiment,
    ExperimentResult,
    ShardPlanner,
    SweepJournal,
    SweepJournalLockedError,
    SweepPointError,
    SweepResult,
    build_dbpim_config,
    build_grid,
    run_shard,
    run_sweep,
)
from repro.api.sweep import SweepPoint, run_point

GRID_KWARGS = dict(experiments=("fig7", "table4"), models=("alexnet", "mobilenetv2"))


class TestShardPlanner:
    def test_plan_is_deterministic(self, tmp_path):
        grid = build_grid(**GRID_KWARGS)
        planner = ShardPlanner(cache_dir=tmp_path, shards=2)
        assert planner.plan(grid) == planner.plan(grid)

    def test_cold_points_grouped_by_seed_and_engine(self):
        grid = build_grid(
            experiments=("table4",),
            configs=("paper-28nm", "dense-baseline"),
            seeds=(0, 1),
        )
        plan = ShardPlanner(shards=2).plan(grid)
        for shard in plan.shards:
            keys = {(p.seed, p.engine) for p in shard.points}
            assert len(keys) == 1  # one (seed, engine) worker group per shard
        # Configs are deliberately mixed within a shard so points differing
        # only in configuration can fuse onto one grid pass; every distinct
        # config must ship with the shard, in first-appearance order.
        mixed = [s for s in plan.shards if len({p.config for p in s.points}) > 1]
        assert mixed
        for shard in mixed:
            shipped = [name for name, _ in shard.configs]
            seen = list(dict.fromkeys(p.config for p in shard.points))
            assert shipped == seen

    def test_shard_count_respects_target(self):
        grid = build_grid(experiments=("fig7",))  # five single-model points
        plan = ShardPlanner(shards=2).plan(grid)
        assert 1 <= len(plan.shards) <= 2
        assert sorted(i for s in plan.shards for i in s.indices) == list(
            range(len(grid))
        )

    def test_warm_and_cold_points_split_by_cache_state(self, tmp_path):
        grid = build_grid(**GRID_KWARGS)
        # Prime the cache with exactly one point.
        run_point(grid[0], cache_dir=tmp_path)
        plan = ShardPlanner(cache_dir=tmp_path, shards=4).plan(grid)
        assert plan.warm_points == 1 and plan.cold_points == len(grid) - 1
        warm = [s for s in plan.shards if s.warm]
        assert len(warm) == 1 and warm[0].points == (grid[0],)

    def test_journaled_keys_excluded_from_shards(self):
        grid = build_grid(**GRID_KWARGS)
        keys = [point.cache_key() for point in grid]
        plan = ShardPlanner(shards=4).plan(grid, journaled_keys=keys[:2])
        assert plan.journaled == (0, 1)
        covered = sorted(i for s in plan.shards for i in s.indices)
        assert covered == list(range(2, len(grid)))

    def test_shards_ship_resolved_configs(self):
        grid = build_grid(experiments=("table4",), configs=("dense-baseline",))
        plan = ShardPlanner().plan(grid)
        ((name, config),) = plan.shards[0].configs
        assert name == "dense-baseline" and not config.weight_sparsity

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardPlanner(shards=0)
        with pytest.raises(ValueError, match="max_workers"):
            ShardPlanner(max_workers=-1)


class TestExecutorEquality:
    def test_all_backends_produce_identical_results(self):
        serial = run_sweep(executor="serial", **GRID_KWARGS)
        thread = run_sweep(executor="thread", max_workers=2, **GRID_KWARGS)
        process = run_sweep(
            executor="process", max_workers=2, shards=3, **GRID_KWARGS
        )
        assert serial.results == thread.results == process.results
        assert (
            serial.cache_misses
            == thread.cache_misses
            == process.cache_misses
            == len(serial.results)
        )

    def test_cross_config_fused_shard_matches_point_at_a_time(self):
        # Points differing only in configuration land on one shard and are
        # precomputed through the config-fused grid kernel (one
        # simulate_grid pass priming every per-config session); the
        # split-back results must be byte-identical to executing every
        # point individually on its own session.
        grid = build_grid(
            experiments=("fig7",),
            models=("alexnet",),
            configs=(
                "paper-28nm",
                "dense-baseline",
                "weight-sparsity-only",
                "input-sparsity-only",
            ),
            seeds=(0,),
        )
        plan = ShardPlanner(shards=1).plan(grid)
        assert len(plan.shards) == 1  # one (seed, engine) group
        outcomes = run_shard(plan.shards[0])
        reference = tuple(run_point(p)[0] for p in grid)
        assert tuple(r for _, r, _ in sorted(outcomes)) == reference

    def test_merged_shard_execution_matches_point_at_a_time(self):
        # One shard holding several single-model fig7 points merges them
        # into one batched run; the split results must be identical to
        # executing every point individually.
        sweep = run_sweep(executor="serial", shards=1, **GRID_KWARGS)
        reference = tuple(run_point(p)[0] for p in build_grid(**GRID_KWARGS))
        assert sweep.results == reference

    def test_process_backend_uses_and_fills_cache(self, tmp_path):
        cold = run_sweep(
            executor="process", max_workers=2, cache_dir=tmp_path, **GRID_KWARGS
        )
        assert cold.cache_hits == 0 and cold.cache_misses == len(cold.results)
        warm = run_sweep(
            executor="process", max_workers=2, cache_dir=tmp_path, **GRID_KWARGS
        )
        assert warm.cache_hits == len(warm.results) and warm.cache_misses == 0
        assert warm.results == cold.results

    def test_process_backend_ships_user_registered_configs(self, tmp_path):
        # A session on an unregistered config: the preset only exists in
        # this process, so process workers must receive it with the shard.
        session = Experiment(config=build_dbpim_config(num_macros=2))
        sweep = session.run_sweep(
            experiments=("table4",), executor="process", max_workers=2
        )
        assert len(sweep) == 1
        assert sweep.results[0].config == session.config_name

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_sweep(experiments=("table4",), executor="mpi")

    def test_stats_attached_but_not_serialised(self):
        sweep = run_sweep(executor="serial", experiments=("table4",))
        assert sweep.stats is not None
        assert sweep.stats.executor == "serial"
        assert sweep.stats.cold_points == 1
        assert sweep.stats.elapsed_s > 0
        assert "stats" not in sweep.to_dict()
        rebuilt = SweepResult.from_json(sweep.to_json())
        assert rebuilt.stats is None and rebuilt == sweep


class TestFailureAttribution:
    def test_failing_point_identified_and_chained(self, monkeypatch):
        real_experiment = sweep_module.Experiment

        class Exploding(real_experiment):
            def run(self, experiment, **params):
                # Fires on the merged batch too, so the shard's per-point
                # fallback must localise the failure to the single point.
                if "mobilenetv2" in (params.get("models") or []):
                    raise RuntimeError("injected fault")
                return super().run(experiment, **params)

        monkeypatch.setattr(sweep_module, "Experiment", Exploding)
        with pytest.raises(SweepPointError) as info:
            run_sweep(executor="thread", max_workers=2, **GRID_KWARGS)
        message = str(info.value)
        assert "mobilenetv2" in message and "fig7" in message
        assert "injected fault" in message
        assert info.value.point is not None
        assert info.value.point.params["models"] == ["mobilenetv2"]

    def test_error_is_picklable_with_point(self):
        import pickle

        point = SweepPoint(experiment="fig7", params={"models": ["alexnet"]})
        error = SweepPointError("boom", point)
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "boom" and clone.point == point


class TestJournal:
    def test_fresh_run_journals_every_point(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        sweep = run_sweep(executor="serial", journal=journal, **GRID_KWARGS)
        lines = journal.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert len(lines) == len(sweep.results) + 1
        entries = SweepJournal(journal).load()
        assert len(entries) == len(sweep.results)
        for result, hit in entries.values():
            assert isinstance(result, ExperimentResult) and hit is False

    def test_resume_skips_journaled_points_and_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        journal = tmp_path / "sweep.jsonl"
        full = run_sweep(executor="serial", journal=journal, **GRID_KWARGS)
        # Simulate a kill after the first journaled shard: keep the header
        # plus two finished points.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")

        executed = []
        real_experiment = sweep_module.Experiment

        class Counting(real_experiment):
            def run(self, experiment, **params):
                executed.append((experiment, params.get("models")))
                return super().run(experiment, **params)

        monkeypatch.setattr(sweep_module, "Experiment", Counting)
        resumed = run_sweep(
            executor="serial", journal=journal, resume=True, **GRID_KWARGS
        )
        assert resumed.to_json() == full.to_json()  # byte-identical payload
        assert resumed.stats.journaled_points == 2
        assert len(executed) == 1  # only the missing point was recomputed
        # The journal now covers the whole grid; a further resume runs
        # nothing at all.
        executed.clear()
        again = run_sweep(
            executor="serial", journal=journal, resume=True, **GRID_KWARGS
        )
        assert again.to_json() == full.to_json() and executed == []

    def test_resume_with_cache_keeps_results_identical(self, tmp_path):
        # A kill can land between a point's cache write and its shard's
        # journal append.  On resume such points legitimately count as
        # cache hits (counters report this invocation's work), but the
        # results payload must still match the uninterrupted run exactly.
        cache = tmp_path / "cache"
        journal = tmp_path / "sweep.jsonl"
        full = run_sweep(
            executor="serial", cache_dir=cache, journal=journal, **GRID_KWARGS
        )
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")  # header + 1 point
        resumed = run_sweep(
            executor="serial",
            cache_dir=cache,
            journal=journal,
            resume=True,
            **GRID_KWARGS,
        )
        assert resumed.results == full.results
        assert resumed.stats.journaled_points == 1
        # The journaled point keeps its recorded miss flag; every
        # unjournaled point was already cached by the "killed" run and so
        # legitimately resumes as a hit.
        assert resumed.cache_hits == len(full.results) - 1
        assert resumed.cache_misses == 1

    def test_torn_tail_line_is_skipped_with_warning(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(executor="serial", journal=journal, experiments=("table4",))
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "cache_key": "tr')  # torn write
        with pytest.warns(RuntimeWarning, match="torn"):
            entries = SweepJournal(journal).load()
        assert len(entries) == 1
        resumed = run_sweep(
            executor="serial",
            journal=journal,
            resume=True,
            experiments=("table4",),
        )
        assert resumed.stats.journaled_points == 1

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(executor="serial", journal=journal, **GRID_KWARGS)
        run_sweep(executor="serial", journal=journal, experiments=("table4",))
        assert len(SweepJournal(journal).load()) == 1  # truncated, not mixed

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="requires a journal"):
            run_sweep(experiments=("table4",), resume=True)

    def test_journal_records_cache_hits(self, tmp_path):
        cache = tmp_path / "cache"
        journal = tmp_path / "sweep.jsonl"
        run_sweep(executor="serial", cache_dir=cache, experiments=("table4",))
        run_sweep(
            executor="serial",
            cache_dir=cache,
            journal=journal,
            experiments=("table4",),
        )
        ((_, hit),) = SweepJournal(journal).load().values()
        assert hit is True


class TestCacheRobustness:
    def test_corrupt_entry_warns_and_recovers(self, tmp_path):
        run_sweep(experiments=("table4",), cache_dir=tmp_path)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("garbage{{{", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable sweep-cache"):
            recovered = run_sweep(experiments=("table4",), cache_dir=tmp_path)
        assert recovered.cache_misses == 1
        warm = run_sweep(experiments=("table4",), cache_dir=tmp_path)
        assert warm.cache_hits == 1

    def test_save_leaves_no_temp_files(self, tmp_path):
        result, _ = run_point(SweepPoint(experiment="table4"))
        target = tmp_path / "entry.json"
        result.save(target)
        result.save(target)  # overwrite is atomic too
        assert ExperimentResult.load(target) == result
        assert [p.name for p in tmp_path.iterdir()] == ["entry.json"]


class TestSessionRunSweep:
    def test_session_pins_config_seed_engine(self, tmp_path):
        session = Experiment(config="dense-baseline", seed=3, engine="scalar")
        sweep = session.run_sweep(
            experiments=("fig7",), models=("alexnet",), cache_dir=tmp_path
        )
        (result,) = sweep.results
        assert result.config == "dense-baseline" and result.seed == 3
        direct = session.run("fig7", models=["alexnet"])
        assert result == direct

    def test_run_shard_overrides_divergent_local_preset(self):
        # A spawn-started worker resolves preset names against a fresh
        # registry; if the parent overrode a name, the shipped config must
        # win over the local contents, not silently lose to them.
        from repro.api import register_config

        shipped = build_dbpim_config(num_macros=2)
        register_config("svc-divergent", shipped, overwrite=True)
        grid = build_grid(experiments=("table4",), configs=("svc-divergent",))
        plan = ShardPlanner().plan(grid)  # ships the resolved `shipped`
        # Simulate the worker's divergent registry state.
        register_config(
            "svc-divergent", build_dbpim_config(num_macros=8), overwrite=True
        )
        ((_, result, _),) = run_shard(plan.shards[0])
        expected = Experiment(config=shipped).run("table4")
        assert result.rows == expected.rows

    def test_run_shard_entrypoint_sorts_by_grid_index(self, tmp_path):
        grid = build_grid(**GRID_KWARGS)
        plan = ShardPlanner(shards=1).plan(grid)
        (shard,) = [s for s in plan.shards if len(s) > 1]
        outcomes = run_shard(shard, cache_dir=tmp_path)
        assert [index for index, _, _ in outcomes] == sorted(shard.indices)
        assert all(hit is False for _, _, hit in outcomes)


class TestJournalLock:
    """The exclusive journal lock: two live sweeps must not share a journal."""

    def test_acquire_is_exclusive_and_release_idempotent(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = SweepJournal(path)
        first.acquire()
        assert first.lock_path.exists()
        assert int(first.lock_path.read_text().strip()) == os.getpid()
        second = SweepJournal(path)
        with pytest.raises(SweepJournalLockedError, match="locked by a running"):
            second.acquire()
        first.release()
        first.release()  # idempotent
        assert not first.lock_path.exists()
        second.acquire()  # free again
        second.release()

    def test_stale_lock_from_dead_process_is_reclaimed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        # A PID that is guaranteed dead: a subprocess we already reaped.
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(probe.stdout.strip())
        journal = SweepJournal(path)
        journal.lock_path.write_text(f"{dead_pid}\n")
        with pytest.warns(RuntimeWarning, match="reclaiming stale"):
            journal.acquire()
        assert int(journal.lock_path.read_text().strip()) == os.getpid()
        journal.release()

    def test_run_sweep_fails_fast_on_held_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        holder = SweepJournal(journal)
        holder.acquire()
        try:
            with pytest.raises(SweepJournalLockedError):
                run_sweep(executor="serial", journal=journal, **GRID_KWARGS)
            # Fail-fast means no journal bytes were written at all.
            assert not journal.exists()
        finally:
            holder.release()

    def test_run_sweep_releases_lock_even_on_failure(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        sweep = run_sweep(executor="serial", journal=journal, **GRID_KWARGS)
        assert sweep.results
        assert not SweepJournal(journal).lock_path.exists()
        with pytest.raises(SweepPointError):
            run_sweep(
                executor="serial",
                journal=tmp_path / "bad.jsonl",
                experiments=("fig7",),
                models=("alexnet",),
                params_by_experiment={"fig7": {"wat": 1}},
            )
        assert not SweepJournal(tmp_path / "bad.jsonl").lock_path.exists()
