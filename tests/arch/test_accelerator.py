"""Integration tests: layers executed end-to-end on the functional accelerator."""

import numpy as np
import pytest

from repro.arch.accelerator import DBPIMAccelerator
from repro.arch.config import DBPIMConfig
from repro.core.fta import approximate_layer


@pytest.fixture()
def small_problem():
    rng = np.random.default_rng(0)
    weights = rng.integers(-128, 128, size=(6, 48))
    inputs = rng.integers(0, 200, size=48)
    return weights, inputs


class TestRunLinear:
    def test_sparse_output_matches_fta_reference(self, small_problem):
        weights, inputs = small_problem
        accelerator = DBPIMAccelerator(DBPIMConfig())
        result = accelerator.run_linear(weights, inputs)
        expected = approximate_layer(weights).approximated @ inputs
        np.testing.assert_array_equal(result.outputs, expected)
        assert result.cycles > 0
        assert result.tiles >= 1
        assert 0.0 < result.utilization <= 1.0
        assert result.energy.total_pj > 0

    def test_dense_output_matches_exact_reference(self, small_problem):
        weights, inputs = small_problem
        accelerator = DBPIMAccelerator(DBPIMConfig().dense_baseline())
        result = accelerator.run_linear(weights, inputs)
        np.testing.assert_array_equal(result.outputs, weights @ inputs)

    def test_pre_approximated_weights_are_not_modified(self, small_problem):
        weights, inputs = small_problem
        approximated = approximate_layer(weights).approximated
        accelerator = DBPIMAccelerator(DBPIMConfig())
        result = accelerator.run_linear(approximated, inputs, apply_fta=False)
        np.testing.assert_array_equal(result.outputs, approximated @ inputs)

    def test_sparse_uses_fewer_cycles_than_dense(self, small_problem):
        weights, inputs = small_problem
        sparse = DBPIMAccelerator(DBPIMConfig()).run_linear(weights, inputs)
        dense = DBPIMAccelerator(DBPIMConfig().dense_baseline()).run_linear(
            weights, inputs
        )
        assert sparse.cycles <= dense.cycles
        assert sparse.energy.total_pj < dense.energy.total_pj

    def test_weight_only_variant(self, small_problem):
        weights, inputs = small_problem
        config = DBPIMConfig().weight_sparsity_only()
        result = DBPIMAccelerator(config).run_linear(weights, inputs)
        expected = approximate_layer(weights).approximated @ inputs
        np.testing.assert_array_equal(result.outputs, expected)

    def test_shape_validation(self):
        accelerator = DBPIMAccelerator()
        with pytest.raises(ValueError):
            accelerator.run_linear(np.ones((2, 4)), np.ones(3))
        with pytest.raises(ValueError):
            accelerator.run_linear(np.ones(4), np.ones(4))

    def test_large_layer_is_tiled(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-64, 64, size=(40, 200))
        inputs = rng.integers(0, 128, size=200)
        accelerator = DBPIMAccelerator()
        result = accelerator.run_linear(weights, inputs)
        expected = approximate_layer(weights).approximated @ inputs
        np.testing.assert_array_equal(result.outputs, expected)
        assert result.tiles > 1

    def test_buffer_traffic_recorded(self, small_problem):
        weights, inputs = small_problem
        accelerator = DBPIMAccelerator()
        accelerator.run_linear(weights, inputs)
        assert accelerator.buffers.feature.bytes_read > 0
        assert accelerator.buffers.weight.bytes_read > 0
        assert accelerator.buffers.meta.bytes_read > 0


class TestRunConv2D:
    def test_matches_integer_convolution(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(-64, 64, size=(4, 3, 3, 3))
        feature_map = rng.integers(0, 64, size=(3, 6, 6))
        accelerator = DBPIMAccelerator(DBPIMConfig().dense_baseline())
        result = accelerator.run_conv2d(weights, feature_map, stride=1, padding=1)
        expected = _reference_conv(weights, feature_map, stride=1, padding=1)
        np.testing.assert_array_equal(result.outputs, expected)

    def test_sparse_conv_matches_fta_convolution(self):
        rng = np.random.default_rng(3)
        weights = rng.integers(-64, 64, size=(4, 2, 3, 3))
        feature_map = rng.integers(0, 64, size=(2, 5, 5))
        accelerator = DBPIMAccelerator(DBPIMConfig())
        result = accelerator.run_conv2d(weights, feature_map, stride=1, padding=0)
        fta_weights = (
            approximate_layer(weights.reshape(4, -1)).approximated.reshape(weights.shape)
        )
        expected = _reference_conv(fta_weights, feature_map, stride=1, padding=0)
        np.testing.assert_array_equal(result.outputs, expected)

    def test_shape_validation(self):
        accelerator = DBPIMAccelerator()
        with pytest.raises(ValueError):
            accelerator.run_conv2d(np.ones((2, 2, 3, 3)), np.ones((3, 4, 4)))
        with pytest.raises(ValueError):
            accelerator.run_conv2d(np.ones((2, 2, 3)), np.ones((2, 4, 4)))


def _reference_conv(weights, feature_map, stride, padding):
    out_channels, in_channels, kernel, _ = weights.shape
    padded = np.pad(feature_map, ((0, 0), (padding, padding), (padding, padding)))
    height, width = padded.shape[1:]
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    output = np.zeros((out_channels, out_h, out_w), dtype=np.int64)
    for oc in range(out_channels):
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[
                    :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
                ]
                output[oc, oy, ox] = np.sum(patch * weights[oc])
    return output
