"""Tests for the hardware configuration dataclasses."""

import pytest

from repro.arch.config import BufferConfig, ClockConfig, DBPIMConfig, MacroConfig


class TestMacroConfig:
    def test_paper_defaults(self):
        config = MacroConfig()
        assert config.cells == 16 * 64 * 16
        assert config.size_kilobits == 16.0
        assert config.dense_filters_per_macro == 2
        assert config.sparse_filters_per_macro(1) == 16
        assert config.sparse_filters_per_macro(2) == 8

    def test_zero_threshold_treated_as_one(self):
        assert MacroConfig().sparse_filters_per_macro(0) == 16

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MacroConfig(rows=0)
        with pytest.raises(ValueError):
            MacroConfig(columns=10, weight_bits=8)

    def test_input_positions(self):
        assert MacroConfig().input_positions == 1024


class TestBufferConfig:
    def test_paper_totals(self):
        config = BufferConfig()
        # 128 + 32 + 96 + 16 KB buffers + 4 x 6 KB meta RFs (+ output RF).
        assert config.total_sram_bytes >= (128 + 32 + 96 + 16 + 24) * 1024
        assert config.total_sram_bytes // 1024 == 296

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BufferConfig(feature_buffer=0)


class TestClockConfig:
    def test_cycle_time(self):
        assert ClockConfig(frequency_mhz=500).cycle_time_ns == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ClockConfig(frequency_mhz=0)


class TestDBPIMConfig:
    def test_pim_size_matches_paper(self):
        config = DBPIMConfig()
        assert config.pim_size_kilobytes == pytest.approx(8.0)  # 4 x 16 Kb = 8 KB

    def test_variants(self):
        config = DBPIMConfig()
        dense = config.dense_baseline()
        assert not dense.weight_sparsity and not dense.input_sparsity
        weight_only = config.weight_sparsity_only()
        assert weight_only.weight_sparsity and not weight_only.input_sparsity
        input_only = config.input_sparsity_only()
        assert not input_only.weight_sparsity and input_only.input_sparsity
        # The original configuration is untouched.
        assert config.weight_sparsity and config.input_sparsity

    def test_invalid_macro_count(self):
        with pytest.raises(ValueError):
            DBPIMConfig(num_macros=0)
