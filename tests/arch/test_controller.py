"""Tests for the top controller and its link to the compiler."""

import numpy as np
import pytest

from repro.arch.config import BufferConfig, DBPIMConfig
from repro.arch.controller import TopController
from repro.compiler.codegen import generate_layer_program
from repro.compiler.isa import Opcode, Program
from repro.compiler.mapping import map_layer
from repro.workloads.layers import LayerKind, LayerShape


@pytest.fixture()
def fc_layer():
    return LayerShape(
        name="fc", kind=LayerKind.LINEAR, in_channels=512, out_channels=64
    )


class TestTopController:
    def test_executes_generated_program(self, fc_layer):
        config = DBPIMConfig().dense_baseline()
        program = generate_layer_program(fc_layer, config)
        summary = TopController(config).execute(program)
        mapping = map_layer(fc_layer, config)
        assert summary.instructions == len(program)
        assert summary.weight_loads == mapping.filter_iterations
        # The broadcast cycles dispatched by the controller equal the cycle
        # count the mapping predicts for the layer.
        assert summary.broadcast_cycles == pytest.approx(mapping.total_cycles)
        assert summary.write_back_elements == fc_layer.out_channels

    def test_sparse_program_dispatch(self, fc_layer):
        config = DBPIMConfig()
        thresholds = np.ones(fc_layer.out_channels, dtype=np.int64)
        program = generate_layer_program(
            fc_layer, config, thresholds=thresholds, input_active_columns=5.0
        )
        summary = TopController(config).execute(program)
        assert summary.metadata_loads >= 1
        dense_summary = TopController(config).execute(
            generate_layer_program(fc_layer, config.dense_baseline())
        )
        assert summary.broadcast_cycles < dense_summary.broadcast_cycles

    def test_instruction_buffer_overflow_rejected(self, fc_layer):
        tiny = DBPIMConfig(
            buffers=BufferConfig(instruction_buffer=16)
        ).dense_baseline()
        program = generate_layer_program(fc_layer, tiny)
        with pytest.raises(ValueError):
            TopController(tiny).execute(program)

    def test_invalid_operands_rejected(self):
        controller = TopController()
        bad_repeat = Program()
        bad_repeat.append(Opcode.BROADCAST, cycles=8, repeats=0)
        with pytest.raises(ValueError):
            controller.execute(bad_repeat)
        bad_cycles = Program()
        bad_cycles.append(Opcode.BROADCAST, cycles=-1)
        with pytest.raises(ValueError):
            controller.execute(bad_cycles)

    def test_barrier_is_a_no_op(self):
        program = Program()
        program.append(Opcode.BARRIER)
        summary = TopController().execute(program)
        assert summary.instructions == 1
        assert summary.broadcast_cycles == 0
        assert summary.opcode_counts == {"barrier": 1}
