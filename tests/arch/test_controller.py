"""Tests for the top controller and its link to the compiler."""

import numpy as np
import pytest

from repro.arch.config import BufferConfig, DBPIMConfig
from repro.arch.controller import TopController
from repro.compiler.codegen import generate_layer_program
from repro.compiler.isa import Opcode, Program
from repro.compiler.mapping import map_layer
from repro.workloads.layers import LayerKind, LayerShape


@pytest.fixture()
def fc_layer():
    return LayerShape(
        name="fc", kind=LayerKind.LINEAR, in_channels=512, out_channels=64
    )


class TestTopController:
    def test_executes_generated_program(self, fc_layer):
        config = DBPIMConfig().dense_baseline()
        program = generate_layer_program(fc_layer, config)
        summary = TopController(config).execute(program)
        mapping = map_layer(fc_layer, config)
        assert summary.instructions == len(program)
        assert summary.weight_loads == mapping.filter_iterations
        # The broadcast cycles dispatched by the controller equal the cycle
        # count the mapping predicts for the layer.
        assert summary.broadcast_cycles == pytest.approx(mapping.total_cycles)
        assert summary.write_back_elements == fc_layer.out_channels

    def test_sparse_program_dispatch(self, fc_layer):
        config = DBPIMConfig()
        thresholds = np.ones(fc_layer.out_channels, dtype=np.int64)
        program = generate_layer_program(
            fc_layer, config, thresholds=thresholds, input_active_columns=5.0
        )
        summary = TopController(config).execute(program)
        assert summary.metadata_loads >= 1
        dense_summary = TopController(config).execute(
            generate_layer_program(fc_layer, config.dense_baseline())
        )
        assert summary.broadcast_cycles < dense_summary.broadcast_cycles

    def test_instruction_buffer_overflow_rejected(self, fc_layer):
        tiny = DBPIMConfig(
            buffers=BufferConfig(instruction_buffer=16)
        ).dense_baseline()
        program = generate_layer_program(fc_layer, tiny)
        with pytest.raises(ValueError):
            TopController(tiny).execute(program)

    def test_invalid_operands_rejected(self):
        controller = TopController()
        bad_repeat = Program()
        bad_repeat.append(Opcode.BROADCAST, cycles=8, repeats=0)
        with pytest.raises(ValueError):
            controller.execute(bad_repeat)
        bad_cycles = Program()
        bad_cycles.append(Opcode.BROADCAST, cycles=-1)
        with pytest.raises(ValueError):
            controller.execute(bad_cycles)

    def test_barrier_is_a_no_op(self):
        program = Program()
        program.append(Opcode.BARRIER)
        summary = TopController().execute(program)
        assert summary.instructions == 1
        assert summary.broadcast_cycles == 0
        assert summary.opcode_counts == {"barrier": 1}


class TestSegmentAwareChecking:
    def _segmented_program(self, sizes):
        program = Program()
        for index, size in enumerate(sizes):
            program.open_segment(f"segment-{index}", layer=f"layer-{index}")
            for _ in range(size):
                program.append(Opcode.BARRIER)
            program.close_segment()
        return program

    def test_overflow_error_names_the_offending_segment(self):
        # Two instructions fit (16 bytes); the middle segment holds three.
        tiny = DBPIMConfig(buffers=BufferConfig(instruction_buffer=16))
        program = self._segmented_program([2, 3, 1])
        with pytest.raises(ValueError) as excinfo:
            TopController(tiny).check_program(program)
        message = str(excinfo.value)
        assert "segment 1" in message
        assert "segment-1" in message
        assert "3 instructions" in message
        assert "24 bytes" in message
        assert "16-byte instruction buffer" in message

    def test_segmented_program_larger_than_buffer_is_accepted(self):
        # Whole program: 80 bytes > 32-byte buffer, but every segment (one
        # refill) fits -- exactly what whole-model programs rely on.
        config = DBPIMConfig(buffers=BufferConfig(instruction_buffer=32))
        program = self._segmented_program([4, 4, 2])
        controller = TopController(config)
        controller.check_program(program)
        summary = controller.execute(program)
        assert summary.instructions == 10

    def test_flat_program_keeps_whole_program_check(self, fc_layer):
        tiny = DBPIMConfig(
            buffers=BufferConfig(instruction_buffer=16)
        ).dense_baseline()
        program = generate_layer_program(fc_layer, tiny)
        assert not program.segments
        with pytest.raises(ValueError, match="instruction buffer"):
            TopController(tiny).check_program(program)


class TestUpgradedAccounting:
    def test_q16_broadcast_cycles_resolve_fractionally(self):
        program = Program()
        # 2.5 cycles per pass, dispatched 4 times.
        program.append(Opcode.BROADCAST, cycles=2, cycles_q16=2 * 65536 + 32768, repeats=4)
        summary = TopController().execute(program)
        assert summary.broadcast_cycles == pytest.approx(10.0)
        assert summary.estimated_compute_cycles == summary.broadcast_cycles

    def test_byte_traffic_and_occupancy_tallies(self):
        program = Program()
        program.append(Opcode.LOAD_WEIGHTS, bytes=100)
        program.append(Opcode.LOAD_METADATA, bytes=50)
        program.append(Opcode.LOAD_FEATURES, bytes=64, repeats=2)
        program.append(Opcode.LOAD_FEATURES, bytes=64)
        program.append(Opcode.ACCUMULATE)  # retires the first feature tile
        program.append(Opcode.BARRIER)  # retires the iteration
        program.append(Opcode.LOAD_WEIGHTS, bytes=30)
        program.append(Opcode.WRITE_BACK, elements=16)
        summary = TopController().execute(program)
        assert summary.weight_bytes == 130
        assert summary.metadata_bytes == 50
        assert summary.feature_bytes == 64 * 2 + 64
        assert summary.peak_weight_buffer_bytes == 100
        assert summary.peak_meta_buffer_bytes == 50
        assert summary.peak_feature_buffer_bytes == 128
        assert summary.write_back_elements == 16
        assert summary.write_back_bytes == 16

    def test_busy_cycles_pricing(self):
        program = Program()
        program.append(Opcode.BROADCAST, cycles=8)
        program.append(Opcode.LOAD_FEATURES, bytes=65)
        program.append(Opcode.SIMD_OP, elements=33)
        program.append(Opcode.WRITE_BACK, elements=10)
        summary = TopController().execute(program)
        busy = summary.busy_cycles(bytes_per_cycle=64, simd_lanes=16)
        assert busy["macro"] == pytest.approx(8.0)
        assert busy["dma_feature"] == 2  # ceil(65 / 64)
        assert busy["simd"] == 3  # ceil(33 / 16)
        assert busy["write_back"] == 1
        with pytest.raises(ValueError):
            summary.busy_cycles(bytes_per_cycle=0)
