"""Tests for the input pre-processing unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.ipu import InputPreprocessingUnit


class TestZeroColumnMask:
    def test_all_zero_group(self):
        ipu = InputPreprocessingUnit()
        mask = ipu.zero_column_mask(np.zeros(16, dtype=np.int64))
        assert mask.all()

    def test_dense_group(self):
        ipu = InputPreprocessingUnit()
        mask = ipu.zero_column_mask(np.full(16, 255))
        assert not mask.any()

    def test_paper_figure_pattern(self):
        # Fig. 6: a group whose OR is 0100_1101 has non-zero columns at
        # positions 0, 2, 3 and 6.
        ipu = InputPreprocessingUnit()
        group = np.array([0b01001001, 0b00000100, 0b01001101] + [0] * 13)
        mask = ipu.zero_column_mask(group)
        nonzero_positions = [i for i in range(8) if not mask[i]]
        assert nonzero_positions == [0, 2, 3, 6]

    def test_rejects_out_of_range(self):
        ipu = InputPreprocessingUnit()
        with pytest.raises(ValueError):
            ipu.zero_column_mask(np.array([256]))
        with pytest.raises(ValueError):
            ipu.zero_column_mask(np.array([-1]))
        with pytest.raises(ValueError):
            ipu.zero_column_mask(np.array([], dtype=np.int64))


class TestColumns:
    def test_nonzero_columns_msb_first(self):
        ipu = InputPreprocessingUnit()
        group = np.array([0b01001101] + [0] * 15)
        columns = ipu.nonzero_columns(group)
        assert [c.position for c in columns] == [6, 3, 2, 0]
        assert columns[0].bits[0] == 1
        assert columns[0].bits[1] == 0

    def test_all_columns_dense_mode(self):
        ipu = InputPreprocessingUnit()
        columns = ipu.all_columns(np.array([1, 2, 3]))
        assert len(columns) == 8
        assert [c.position for c in columns] == list(range(7, -1, -1))

    def test_broadcast_cycles(self):
        ipu = InputPreprocessingUnit()
        group = np.array([0x0F] * 16)
        assert ipu.broadcast_cycles(group) == 4
        assert ipu.broadcast_cycles(group, skip_zero_columns=False) == 8

    def test_columns_reconstruct_values(self):
        ipu = InputPreprocessingUnit()
        rng = np.random.default_rng(0)
        group = rng.integers(0, 256, size=16)
        columns = ipu.nonzero_columns(group)
        reconstructed = np.zeros(16, dtype=np.int64)
        for column in columns:
            reconstructed += column.bits << column.position
        np.testing.assert_array_equal(reconstructed, group)


class TestGroupsAndAverages:
    def test_iter_groups(self):
        ipu = InputPreprocessingUnit(group_size=4)
        inputs = np.arange(10)
        groups = list(ipu.iter_groups(inputs))
        assert [start for start, _ in groups] == [0, 4, 8]
        assert groups[-1][1].size == 2

    def test_average_active_columns_bounds(self):
        ipu = InputPreprocessingUnit()
        rng = np.random.default_rng(1)
        activations = rng.integers(0, 32, size=256)
        average = ipu.average_active_columns(activations)
        assert 0 <= average <= 8
        assert ipu.average_active_columns(activations, skip_zero_columns=False) == 8.0

    def test_sparser_inputs_need_fewer_cycles(self):
        ipu = InputPreprocessingUnit()
        rng = np.random.default_rng(2)
        small = rng.integers(0, 16, size=512)
        large = rng.integers(0, 256, size=512)
        assert ipu.average_active_columns(small) <= ipu.average_active_columns(large)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            InputPreprocessingUnit(input_bits=0)
        with pytest.raises(ValueError):
            InputPreprocessingUnit(group_size=0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16))
def test_property_skipped_columns_are_truly_zero(values):
    ipu = InputPreprocessingUnit()
    group = np.asarray(values)
    mask = ipu.zero_column_mask(group)
    for position in range(8):
        column_bits = (group >> position) & 1
        if mask[position]:
            assert not column_bits.any()
        else:
            assert column_bits.any()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=16))
def test_property_cycle_count_matches_mask(values):
    ipu = InputPreprocessingUnit()
    group = np.asarray(values)
    assert ipu.broadcast_cycles(group) == int((~ipu.zero_column_mask(group)).sum())
