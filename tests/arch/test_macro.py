"""Tests for the adder tree, post-processing units and the PIM macro."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.adder_tree import CSDAdderTree, PostProcessingUnit
from repro.arch.config import MacroConfig
from repro.arch.macro import PIMMacro
from repro.core.fta import approximate_layer


class TestCSDAdderTree:
    def test_paper_example(self):
        # f0(0) = 0001_0000 (16, block index 2, sign +) and
        # f0(1) = -1000_0000 (-128, block index 3 high, sign -): with both
        # input bits equal to 1 the correct sum is 16 - 128 = -112.
        total = CSDAdderTree.reduce(
            and_results=[1, 1], signs=[1, -1], bit_positions=[4, 7]
        )
        assert total == 16 - 128

    def test_zero_and_results_contribute_nothing(self):
        assert CSDAdderTree.reduce([0, 0], [1, -1], [3, 5]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CSDAdderTree.reduce([1], [1, -1], [0, 1])
        with pytest.raises(ValueError):
            CSDAdderTree.reduce([2], [1], [0])
        with pytest.raises(ValueError):
            CSDAdderTree.reduce([1], [0], [0])
        with pytest.raises(ValueError):
            CSDAdderTree.reduce([1], [1], [-1])

    def test_reduce_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        and_results = rng.integers(0, 2, size=10)
        signs = rng.choice([-1, 1], size=10)
        positions = rng.integers(0, 8, size=10)
        expected = CSDAdderTree.reduce(
            list(and_results), list(signs), list(positions)
        )
        assert CSDAdderTree.reduce_array(and_results, signs, positions) == expected


class TestPostProcessingUnit:
    def test_shift_and_add(self):
        unit = PostProcessingUnit()
        unit.accumulate(3, 0)
        unit.accumulate(3, 1)
        assert unit.accumulator == 3 + 6
        assert unit.shift_add_operations == 2
        assert unit.reset() == 9
        assert unit.accumulator == 0

    def test_negative_partial_sums(self):
        unit = PostProcessingUnit()
        unit.accumulate(-5, 2)
        assert unit.accumulator == -20

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            PostProcessingUnit().accumulate(1, -1)


class TestPIMMacroSparse:
    def _fta(self, weights):
        return approximate_layer(np.asarray(weights)).approximated

    def test_matvec_matches_integer_reference(self):
        rng = np.random.default_rng(1)
        weights = self._fta(rng.integers(-128, 128, size=(8, 64)))
        inputs = rng.integers(0, 256, size=64)
        macro = PIMMacro()
        macro.load_weights_sparse(weights)
        outputs, stats = macro.matvec(inputs)
        np.testing.assert_array_equal(outputs, weights @ inputs)
        assert stats.broadcast_cycles > 0

    def test_skipping_preserves_results(self):
        rng = np.random.default_rng(2)
        weights = self._fta(rng.integers(-128, 128, size=(4, 32)))
        inputs = rng.integers(0, 16, size=32)  # sparse high bits
        macro = PIMMacro()
        macro.load_weights_sparse(weights)
        with_skip, stats_skip = macro.matvec(inputs, skip_zero_columns=True)
        without_skip, stats_dense = macro.matvec(inputs, skip_zero_columns=False)
        np.testing.assert_array_equal(with_skip, without_skip)
        assert stats_skip.broadcast_cycles < stats_dense.broadcast_cycles

    def test_utilization_high_for_fta_weights(self):
        rng = np.random.default_rng(3)
        weights = self._fta(rng.integers(-128, 128, size=(8, 64)))
        macro = PIMMacro()
        macro.load_weights_sparse(weights)
        assert macro.storage_utilization > 0.5
        _, stats = macro.matvec(rng.integers(0, 256, size=64))
        assert stats.actual_utilization > 0.5

    def test_capacity_checks(self):
        macro = PIMMacro()
        too_many_filters = np.ones((20, 8), dtype=np.int64)
        with pytest.raises(ValueError):
            macro.load_weights_sparse(too_many_filters, allocation=1)
        too_many_inputs = np.ones((2, 2000), dtype=np.int64)
        with pytest.raises(ValueError):
            macro.load_weights_sparse(too_many_inputs)

    def test_unapproximated_weights_rejected_for_small_allocation(self):
        macro = PIMMacro()
        weights = np.array([[85, 85]])  # φ = 4 each
        with pytest.raises(ValueError):
            macro.load_weights_sparse(weights, allocation=2)

    def test_matvec_requires_loaded_weights(self):
        with pytest.raises(RuntimeError):
            PIMMacro().matvec(np.zeros(4, dtype=np.int64))

    def test_input_length_checked(self):
        macro = PIMMacro()
        macro.load_weights_sparse(np.ones((2, 8), dtype=np.int64))
        with pytest.raises(ValueError):
            macro.matvec(np.zeros(4, dtype=np.int64))


class TestPIMMacroDense:
    def test_matvec_matches_integer_reference(self):
        rng = np.random.default_rng(4)
        weights = rng.integers(-128, 128, size=(2, 64))
        inputs = rng.integers(0, 256, size=64)
        macro = PIMMacro()
        macro.load_weights_dense(weights)
        outputs, stats = macro.matvec(inputs, skip_zero_columns=False)
        np.testing.assert_array_equal(outputs, weights @ inputs)
        # Dense pass over 4 groups of 16 inputs x 8 bit columns.
        assert stats.broadcast_cycles == 32

    def test_dense_capacity(self):
        macro = PIMMacro()
        with pytest.raises(ValueError):
            macro.load_weights_dense(np.ones((3, 8), dtype=np.int64))
        with pytest.raises(ValueError):
            macro.load_weights_dense(np.full((2, 8), 300))

    def test_dense_utilization_is_low(self):
        rng = np.random.default_rng(5)
        weights = rng.integers(-64, 64, size=(2, 64))
        macro = PIMMacro()
        macro.load_weights_dense(weights)
        _, stats = macro.matvec(rng.integers(0, 256, size=64), skip_zero_columns=False)
        assert stats.actual_utilization < 0.7

    def test_sparse_beats_dense_utilization(self):
        rng = np.random.default_rng(6)
        raw = rng.integers(-128, 128, size=(2, 64))
        fta = approximate_layer(raw).approximated
        inputs = rng.integers(0, 256, size=64)
        dense_macro = PIMMacro()
        dense_macro.load_weights_dense(raw)
        _, dense_stats = dense_macro.matvec(inputs, skip_zero_columns=False)
        sparse_macro = PIMMacro()
        sparse_macro.load_weights_sparse(fta)
        _, sparse_stats = sparse_macro.matvec(inputs, skip_zero_columns=False)
        assert sparse_stats.actual_utilization > dense_stats.actual_utilization


class TestMacroGeometryInteraction:
    def test_filters_capacity_depends_on_threshold(self):
        config = MacroConfig()
        macro = PIMMacro(config)
        weights_phi1 = np.diag(np.full(16, 64))  # one block per weight
        macro.load_weights_sparse(weights_phi1, allocation=1)
        assert macro.mode == "sparse"
        macro_two = PIMMacro(config)
        with pytest.raises(ValueError):
            macro_two.load_weights_sparse(np.ones((16, 4), dtype=np.int64) * 3, allocation=2)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=48),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_sparse_macro_is_exact(num_filters, num_inputs, seed):
    rng = np.random.default_rng(seed)
    weights = approximate_layer(
        rng.integers(-128, 128, size=(num_filters, num_inputs))
    ).approximated
    inputs = rng.integers(0, 256, size=num_inputs)
    macro = PIMMacro()
    macro.load_weights_sparse(weights)
    outputs, _ = macro.matvec(inputs)
    np.testing.assert_array_equal(outputs, weights @ inputs)
