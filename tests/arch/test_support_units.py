"""Tests for buffers, the SIMD core, and the energy / area models."""

import numpy as np
import pytest

from repro.arch.adder_tree import PostProcessingBank, PostProcessingUnit
from repro.arch.area import AreaLibrary, AreaModel
from repro.arch.buffers import Buffer, BufferSet
from repro.arch.config import BufferConfig, DBPIMConfig
from repro.arch.energy import EnergyBreakdown, EnergyLibrary, EnergyModel
from repro.arch.simd import SIMDCore


class TestBuffer:
    def test_access_counting(self):
        buffer = Buffer("test", 1024)
        buffer.write(100)
        buffer.read(40)
        buffer.free(60)
        assert buffer.bytes_written == 100
        assert buffer.bytes_read == 40
        assert buffer.total_accesses_bytes == 140
        assert buffer.peak_occupancy == 100

    def test_fits(self):
        buffer = Buffer("test", 128)
        assert buffer.fits(128)
        assert not buffer.fits(129)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Buffer("bad", 0)
        with pytest.raises(ValueError):
            Buffer("test", 8).write(-1)

    def test_batch_accounting_matches_sequential(self):
        sequential = Buffer("seq", 64)
        for count in (30, 50, 20):
            sequential.write(count)
        for count in (5, 7):
            sequential.read(count)
        batched = Buffer("batch", 64)
        batched.write_batch(np.array([30, 50, 20]))
        batched.read_batch(np.array([5, 7]))
        assert batched.bytes_written == sequential.bytes_written == 100
        assert batched.bytes_read == sequential.bytes_read == 12
        assert batched.peak_occupancy == sequential.peak_occupancy == 64

    def test_batch_rejects_negative_counts(self):
        buffer = Buffer("test", 8)
        with pytest.raises(ValueError):
            buffer.read_batch(np.array([1, -1]))
        with pytest.raises(ValueError):
            buffer.write_batch(np.array([-1]))

    def test_buffer_set_matches_config(self):
        buffers = BufferSet(BufferConfig())
        assert buffers.feature.capacity_bytes == 128 * 1024
        assert buffers.meta_rf.capacity_bytes == 4 * 6 * 1024
        assert set(buffers.all()) == {
            "feature_buffer",
            "weight_buffer",
            "meta_buffer",
            "instruction_buffer",
            "meta_rf",
            "output_rf",
        }
        buffers.weight.read(10)
        assert buffers.total_access_bytes() == 10


class TestSIMDCore:
    def test_operations_counted(self):
        simd = SIMDCore(lanes=4)
        simd.add(np.ones(8), np.ones(8))
        simd.relu(np.ones(8) * -1)
        assert simd.operations == 16
        assert simd.cycles == 4

    def test_requantize(self):
        simd = SIMDCore()
        result = simd.requantize(np.array([1000, -50, 10]), scale=0.1)
        assert result.tolist() == [100, 0, 1]
        with pytest.raises(ValueError):
            simd.requantize(np.array([1]), 0.1, num_bits=0)

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            SIMDCore(lanes=0)

    def test_postprocess_matches_chained_calls(self):
        accumulators = np.array([1000, -500, 10, -3])
        bias = np.array([0, 600, 0, 0])
        chained = SIMDCore()
        expected = chained.requantize(
            chained.relu(chained.add(accumulators, bias)), 0.1
        )
        fused = SIMDCore()
        result = fused.postprocess(accumulators, bias=bias, scale=0.1)
        assert result.tolist() == expected.tolist()
        assert fused.operations == chained.operations

    def test_postprocess_optional_stages(self):
        simd = SIMDCore()
        # No bias, no ReLU: a single requantize's worth of operations.
        result = simd.postprocess(
            np.array([-100, 50]), apply_relu=False, scale=1.0
        )
        assert result.tolist() == [0, 50]  # clipping still applies
        assert simd.operations == 2


class TestPostProcessingBank:
    def test_matches_scalar_units(self):
        columns = np.array([[1, -2, 3], [4, 5, -6]])
        positions = np.array([7, 2])
        units = [PostProcessingUnit() for _ in range(3)]
        for column, position in zip(columns, positions):
            for unit, value in zip(units, column):
                unit.accumulate(int(value), int(position))
        bank = PostProcessingBank(3)
        bank.accumulate_columns(columns, positions)
        assert bank.shift_add_operations == sum(
            unit.shift_add_operations for unit in units
        )
        assert bank.reset().tolist() == [unit.reset() for unit in units]
        assert bank.accumulators.tolist() == [0, 0, 0]

    def test_single_column_convenience(self):
        bank = PostProcessingBank(2)
        bank.accumulate(np.array([3, -1]), 4)
        assert bank.reset().tolist() == [48, -16]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            PostProcessingBank(0)
        bank = PostProcessingBank(2)
        with pytest.raises(ValueError):
            bank.accumulate_columns(np.zeros((1, 3), dtype=int), np.array([0]))
        with pytest.raises(ValueError):
            bank.accumulate_columns(np.zeros((1, 2), dtype=int), np.array([0, 1]))
        with pytest.raises(ValueError):
            bank.accumulate_columns(np.zeros((1, 2), dtype=int), np.array([-1]))


class TestEnergyModel:
    def test_breakdown_totals(self):
        model = EnergyModel()
        breakdown = model.layer_energy(
            cycles=100,
            cell_activations=1000,
            adder_tree_ops=500,
            post_processing_ops=200,
            ipu_bits=800,
            meta_rf_bytes=64,
            buffer_bytes=256,
        )
        assert breakdown.total_pj > 0
        assert breakdown.total_uj == pytest.approx(breakdown.total_pj * 1e-6)
        assert set(breakdown.as_dict()) == {
            "macro_compute",
            "adder_tree",
            "post_processing",
            "ipu",
            "meta_rf",
            "buffers",
            "control",
            "leakage",
        }

    def test_energy_scales_with_activity(self):
        model = EnergyModel()
        small = model.layer_energy(10, 100, 50, 20, 80, 8, 32)
        large = model.layer_energy(20, 200, 100, 40, 160, 16, 64)
        assert large.total_pj == pytest.approx(2 * small.total_pj)

    def test_energy_saving(self):
        baseline = EnergyBreakdown(macro_compute=100.0)
        improved = EnergyBreakdown(macro_compute=25.0)
        assert EnergyModel.energy_saving(baseline, improved) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            EnergyModel.energy_saving(EnergyBreakdown(), improved)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().layer_energy(-1, 0, 0, 0, 0, 0, 0)

    def test_invalid_library(self):
        with pytest.raises(ValueError):
            EnergyLibrary(cell_activation_pj=-1)

    def test_merge(self):
        a = EnergyBreakdown(macro_compute=1.0, buffers=2.0)
        b = EnergyBreakdown(macro_compute=3.0, control=4.0)
        a.merge(b)
        assert a.macro_compute == 4.0
        assert a.buffers == 2.0
        assert a.control == 4.0


class TestAreaModel:
    def test_paper_breakdown_reproduced(self):
        breakdown = AreaModel().breakdown(DBPIMConfig())
        assert breakdown.total_mm2 == pytest.approx(1.15453, abs=1e-3)
        fractions = breakdown.fractions()
        assert fractions["PIM Baseline"] == pytest.approx(0.8732, abs=0.01)
        assert fractions["Meta-RFs"] == pytest.approx(0.0678, abs=0.01)
        assert fractions["Extra Post-processing Units"] == pytest.approx(0.0542, abs=0.01)
        assert fractions["Input Sparsity Support"] < 0.001

    def test_dense_baseline_has_no_sparsity_overhead(self):
        breakdown = AreaModel().breakdown(DBPIMConfig().dense_baseline())
        assert breakdown.meta_rfs == 0.0
        assert breakdown.extra_post_processing == 0.0
        assert breakdown.total_mm2 == pytest.approx(AreaLibrary().pim_baseline_mm2)

    def test_area_scales_with_macros(self):
        small = AreaModel().breakdown(DBPIMConfig(num_macros=4))
        large = AreaModel().breakdown(DBPIMConfig(num_macros=8))
        assert large.pim_baseline == pytest.approx(2 * small.pim_baseline)
        assert large.extra_post_processing > small.extra_post_processing
