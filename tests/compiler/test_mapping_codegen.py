"""Tests for the ISA, the dataflow mapper and the code generator."""

import numpy as np
import pytest

from repro.arch.config import DBPIMConfig
from repro.compiler.codegen import generate_layer_program
from repro.compiler.isa import Instruction, Opcode, Program
from repro.compiler.mapping import map_layer
from repro.workloads.layers import LayerKind, LayerShape


@pytest.fixture()
def conv_layer():
    return LayerShape(
        name="conv", kind=LayerKind.CONV, in_channels=64, out_channels=128,
        kernel_size=3, stride=1, input_size=16, padding=1,
    )


@pytest.fixture()
def fc_layer():
    return LayerShape(
        name="fc", kind=LayerKind.LINEAR, in_channels=512, out_channels=100
    )


class TestISA:
    def test_program_append_and_count(self):
        program = Program()
        program.append(Opcode.LOAD_WEIGHTS, tile=0)
        program.append(Opcode.BROADCAST, cycles=8)
        program.append(Opcode.BROADCAST, cycles=8)
        assert len(program) == 3
        assert program.count(Opcode.BROADCAST) == 2
        assert program.size_bytes() == 24

    def test_instruction_operands(self):
        instruction = Instruction(Opcode.MACRO_COMPUTE, {"filters": 16})
        assert instruction.operand("filters") == 16
        assert instruction.operand("missing", 0) == 0

    def test_invalid_opcode_type(self):
        with pytest.raises(TypeError):
            Instruction("broadcast", {})

    def test_invalid_instruction_size(self):
        with pytest.raises(ValueError):
            Program().size_bytes(bytes_per_instruction=0)


class TestMapping:
    def test_dense_mapping(self, conv_layer):
        config = DBPIMConfig().dense_baseline()
        mapping = map_layer(conv_layer, config)
        assert mapping.filters_per_pass == 2 * config.num_macros
        assert mapping.filter_iterations == 128 // (2 * config.num_macros)
        assert mapping.input_tiles == -(-64 * 9 // 64)
        assert mapping.output_positions == 16 * 16
        assert mapping.cycles_per_pass == 8.0
        assert mapping.total_cycles > 0

    def test_weight_sparse_mapping_phi_one(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        thresholds = np.ones(conv_layer.out_channels, dtype=np.int64)
        mapping = map_layer(conv_layer, config, thresholds=thresholds)
        assert mapping.filters_per_pass == 16 * config.num_macros
        dense_cycles = map_layer(conv_layer, config.dense_baseline()).total_cycles
        assert dense_cycles / mapping.total_cycles == pytest.approx(8.0)

    def test_weight_sparse_mapping_phi_two(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        thresholds = np.full(conv_layer.out_channels, 2, dtype=np.int64)
        mapping = map_layer(conv_layer, config, thresholds=thresholds)
        dense_cycles = map_layer(conv_layer, config.dense_baseline()).total_cycles
        assert dense_cycles / mapping.total_cycles == pytest.approx(4.0)

    def test_mixed_thresholds_grouped(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        thresholds = np.array([1] * 64 + [2] * 64)
        mapping = map_layer(conv_layer, config, thresholds=thresholds)
        # 64 φ=1 filters fit in one pass of 64; 64 φ=2 filters need two.
        assert mapping.filter_iterations == 1 + 2

    def test_input_sparsity_requires_measurement(self, conv_layer):
        config = DBPIMConfig()
        thresholds = np.ones(conv_layer.out_channels, dtype=np.int64)
        with pytest.raises(ValueError):
            map_layer(conv_layer, config, thresholds=thresholds)
        mapping = map_layer(
            conv_layer, config, thresholds=thresholds, input_active_columns=5.5
        )
        assert mapping.cycles_per_pass == pytest.approx(5.5)

    def test_weight_sparsity_requires_thresholds(self, conv_layer):
        with pytest.raises(ValueError):
            map_layer(conv_layer, DBPIMConfig().weight_sparsity_only())

    def test_threshold_count_validated(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        with pytest.raises(ValueError):
            map_layer(conv_layer, config, thresholds=[1, 2, 1])

    def test_invalid_threshold_values(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        bad = np.full(conv_layer.out_channels, 5)
        with pytest.raises(ValueError):
            map_layer(conv_layer, config, thresholds=bad)

    def test_fc_layer_mapping(self, fc_layer):
        config = DBPIMConfig().dense_baseline()
        mapping = map_layer(fc_layer, config)
        assert mapping.output_positions == 1
        assert mapping.input_tiles == 512 // 64

    def test_depthwise_layer_mapping(self):
        layer = LayerShape(
            name="dw", kind=LayerKind.DEPTHWISE, in_channels=32, out_channels=32,
            kernel_size=3, input_size=8, padding=1,
        )
        mapping = map_layer(layer, DBPIMConfig().dense_baseline())
        assert mapping.input_tiles == 1
        assert mapping.output_positions == 64


class TestMappingEdgeCases:
    """Edge-case invariants the overlap scheduler and splitter rely on."""

    def _invariants(self, mapping, config):
        # Every scheduler assumption: positive loop bounds, tiles covering
        # the reduction, bounded cycles-per-pass, bounded cell activity.
        assert mapping.filter_iterations >= 1
        assert mapping.filters_per_pass >= 1
        assert mapping.input_tiles >= 1
        assert mapping.input_tiles * config.macro.rows >= mapping.layer.reduction_size
        assert (mapping.input_tiles - 1) * config.macro.rows < mapping.layer.reduction_size
        assert mapping.output_positions == mapping.layer.output_positions
        assert 0.0 <= mapping.cycles_per_pass <= config.macro.input_bits
        assert mapping.weights_per_pass_cells <= (
            config.macro.cells * config.num_macros
        )
        assert mapping.total_passes == (
            mapping.filter_iterations
            * mapping.input_tiles
            * mapping.output_positions
        )

    def test_depthwise_layer(self):
        layer = LayerShape(
            name="dw", kind=LayerKind.DEPTHWISE, in_channels=96, out_channels=96,
            kernel_size=3, stride=1, input_size=16, padding=1,
        )
        config = DBPIMConfig().dense_baseline()
        mapping = map_layer(layer, config)
        self._invariants(mapping, config)
        # A depthwise reduction is only k*k deep: one tile, 9 rows used.
        assert layer.reduction_size == 9
        assert mapping.input_tiles == 1
        assert mapping.weights_per_pass_cells == (
            config.macro.columns * 9 * config.num_macros
        )

    def test_fc_layer_single_output_position(self):
        layer = LayerShape(
            name="fc", kind=LayerKind.LINEAR, in_channels=4096, out_channels=1000
        )
        config = DBPIMConfig().dense_baseline()
        mapping = map_layer(layer, config)
        self._invariants(mapping, config)
        assert mapping.output_positions == 1
        assert mapping.input_tiles == 4096 // 64
        # Non-multiple filter counts round the iteration count up.
        per_pass = config.macro.dense_filters_per_macro * config.num_macros
        assert mapping.filter_iterations == -(-1000 // per_pass)

    def test_strided_conv_shrinks_output_positions(self):
        config = DBPIMConfig().dense_baseline()
        stride1 = map_layer(
            LayerShape(
                name="s1", kind=LayerKind.CONV, in_channels=32, out_channels=64,
                kernel_size=3, stride=1, input_size=32, padding=1,
            ),
            config,
        )
        stride2 = map_layer(
            LayerShape(
                name="s2", kind=LayerKind.CONV, in_channels=32, out_channels=64,
                kernel_size=3, stride=2, input_size=32, padding=1,
            ),
            config,
        )
        self._invariants(stride2, config)
        assert stride1.output_positions == 32 * 32
        assert stride2.output_positions == 16 * 16
        # Stride only changes the output loop, never the per-pass shape.
        assert stride2.cycles_per_pass == stride1.cycles_per_pass
        assert stride2.input_tiles == stride1.input_tiles
        assert stride2.total_cycles == pytest.approx(stride1.total_cycles / 4)

    def test_filters_at_max_fta_threshold(self, conv_layer):
        from repro.compiler.mapping import MAX_FTA_THRESHOLD

        config = DBPIMConfig().weight_sparsity_only()
        thresholds = np.full(
            conv_layer.out_channels, MAX_FTA_THRESHOLD, dtype=np.int64
        )
        mapping = map_layer(conv_layer, config, thresholds=thresholds)
        self._invariants(mapping, config)
        per_pass = (
            config.macro.columns // MAX_FTA_THRESHOLD
        ) * config.num_macros
        assert mapping.filters_per_pass == per_pass
        assert mapping.filter_iterations == -(-conv_layer.out_channels // per_pass)
        # phi = 4 still beats the dense baseline's 2 filters per macro.
        dense = map_layer(conv_layer, config.dense_baseline())
        assert mapping.total_cycles < dense.total_cycles

    def test_all_zero_filters_map_like_phi_one(self, conv_layer):
        config = DBPIMConfig().weight_sparsity_only()
        zeros = np.zeros(conv_layer.out_channels, dtype=np.int64)
        ones = np.ones(conv_layer.out_channels, dtype=np.int64)
        zero_mapping = map_layer(conv_layer, config, thresholds=zeros)
        one_mapping = map_layer(conv_layer, config, thresholds=ones)
        self._invariants(zero_mapping, config)
        assert zero_mapping.filter_iterations == one_mapping.filter_iterations
        assert zero_mapping.filters_per_pass == one_mapping.filters_per_pass


class TestCodegen:
    def test_program_structure(self, fc_layer):
        config = DBPIMConfig().dense_baseline()
        program = generate_layer_program(fc_layer, config)
        mapping = map_layer(fc_layer, config)
        assert program.count(Opcode.LOAD_WEIGHTS) == mapping.filter_iterations
        assert program.count(Opcode.BROADCAST) == (
            mapping.filter_iterations * mapping.input_tiles
        )
        assert program.count(Opcode.WRITE_BACK) == 1

    def test_program_fits_instruction_buffer(self, fc_layer):
        config = DBPIMConfig().dense_baseline()
        program = generate_layer_program(fc_layer, config)
        assert program.size_bytes() <= config.buffers.instruction_buffer

    def test_sparse_program_generated(self, conv_layer):
        config = DBPIMConfig()
        thresholds = np.ones(conv_layer.out_channels, dtype=np.int64)
        program = generate_layer_program(
            conv_layer, config, thresholds=thresholds, input_active_columns=6.0
        )
        assert program.count(Opcode.LOAD_METADATA) >= 1
        broadcast = next(
            i for i in program if i.opcode is Opcode.BROADCAST
        )
        assert broadcast.operand("cycles") == 6
