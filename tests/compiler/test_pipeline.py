"""Tests for the whole-model pass pipeline, its IR and the segmented ISA."""

import pytest

from repro.arch.config import BufferConfig, DBPIMConfig
from repro.compiler.isa import CYCLE_SCALE, Opcode, Program
from repro.compiler.passes import (
    MappingPass,
    OverlapPass,
    SplitPass,
    ThresholdAssignmentPass,
    instructions_per_iteration,
)
from repro.compiler.pipeline import (
    CompilationError,
    PassManager,
    compile_model,
    default_passes,
    lower_model,
)
from repro.compiler.schedule import (
    ProgramSplitError,
    TransferModel,
    decide_overlap,
    layer_transfer_bytes,
    plan_layer_segments,
)
from repro.workloads.models import get_workload
from repro.workloads.profiles import profile_model


@pytest.fixture(scope="module")
def alexnet_profile():
    return profile_model(get_workload("alexnet"), seed=0)


@pytest.fixture(scope="module")
def compiled_hybrid(alexnet_profile):
    return compile_model(alexnet_profile, variant="hybrid")


class TestLowerAndPasses:
    def test_lower_applies_variant_flags(self, alexnet_profile):
        module = lower_model(alexnet_profile, variant="base")
        assert not module.config.weight_sparsity
        assert not module.config.input_sparsity
        assert len(module.layers) == len(alexnet_profile.layers)
        assert module.pass_log == []

    def test_pass_manager_records_pass_log(self, alexnet_profile):
        module = lower_model(alexnet_profile, variant="hybrid")
        PassManager(default_passes(module)).run(module)
        assert module.pass_log == [
            "assign-thresholds",
            "map-tiling",
            "fuse-elementwise",
            "plan-feature-liveness",
            "overlap-double-buffer",
            "split-instruction-buffer",
        ]

    def test_threshold_pass_respects_variant(self, alexnet_profile):
        dense = lower_model(alexnet_profile, variant="base")
        ThresholdAssignmentPass().run(dense)
        assert all(n.thresholds is None for n in dense.layers)
        assert all(n.input_active_columns is None for n in dense.layers)

        hybrid = lower_model(alexnet_profile, variant="hybrid")
        ThresholdAssignmentPass().run(hybrid)
        for node, layer_profile in zip(hybrid.layers, alexnet_profile.layers):
            assert node.thresholds == tuple(layer_profile.thresholds)
            assert node.input_active_columns == pytest.approx(
                layer_profile.input_active_columns
            )

    def test_mapping_pass_requires_thresholds_for_sparse(self, alexnet_profile):
        module = lower_model(alexnet_profile, variant="hybrid")
        # Skipping the threshold pass leaves thresholds None, which the
        # mapper rejects for a weight-sparse configuration.
        with pytest.raises(ValueError, match="thresholds"):
            MappingPass().run(module)

    def test_split_pass_requires_mapping(self, alexnet_profile):
        module = lower_model(alexnet_profile, variant="base")
        with pytest.raises(CompilationError, match="mapping"):
            SplitPass().run(module)

    def test_overlap_decisions_follow_buffer_capacities(self, alexnet_profile):
        module = lower_model(alexnet_profile, variant="base")
        PassManager([ThresholdAssignmentPass(), MappingPass()]).run(module)
        OverlapPass().run(module)
        for node in module.layers:
            decision = decide_overlap(node.mapping, module.config)
            assert node.overlap == decision
            transfers = layer_transfer_bytes(node.mapping, module.config)
            total_weight_bytes = (
                transfers.weight_bytes_per_iteration
                * node.mapping.filter_iterations
            )
            assert decision.hoist_weight_loads == (
                total_weight_bytes <= module.config.buffers.weight_buffer
            )


class TestSegmentPlanning:
    def test_plans_cover_all_iterations_without_overlap(self):
        plans = plan_layer_segments(
            "layer",
            iterations=20,
            load_instructions=2,
            tile_instructions=40,
            epilogue_instructions=2,
            hoisted=False,
            capacity_bytes=100 * 8,
        )
        covered = []
        for plan in plans:
            covered.extend(range(plan.start_iteration, plan.stop_iteration))
        assert covered == list(range(20))
        assert sum(p.epilogue for p in plans) == 1
        capacity = 100
        for plan in plans:
            size = plan.iterations * (40 + 1 + 2)
            size += plan.hoisted_iterations * 2
            size += 2 if plan.epilogue else 0
            assert size <= capacity

    def test_single_iteration_overflow_raises(self):
        with pytest.raises(ProgramSplitError, match="filter iteration"):
            plan_layer_segments(
                "huge",
                iterations=1,
                load_instructions=2,
                tile_instructions=5000,
                epilogue_instructions=2,
                hoisted=False,
                capacity_bytes=16 * 1024,
            )

    def test_oversized_hoist_prologue_downgrades_to_streaming(self):
        plans = plan_layer_segments(
            "layer",
            iterations=50,
            load_instructions=2,
            tile_instructions=20,
            epilogue_instructions=2,
            hoisted=True,
            capacity_bytes=60 * 8,  # prologue (100) alone exceeds capacity
        )
        assert all(p.hoisted_iterations == 0 for p in plans)

    def test_transfer_model_prices_bytes(self):
        transfer = TransferModel(bytes_per_cycle=64)
        assert transfer.cycles(0) == 0
        assert transfer.cycles(1) == 1
        assert transfer.cycles(64) == 1
        assert transfer.cycles(65) == 2
        with pytest.raises(ValueError):
            TransferModel(bytes_per_cycle=0)


class TestCompileModel:
    def test_whole_model_program_structure(self, alexnet_profile, compiled_hybrid):
        compiled = compiled_hybrid
        program = compiled.program
        assert len(compiled.layers) == len(alexnet_profile.layers)
        assert program.segments  # whole-model programs are always segmented
        # Segments tile the stream contiguously and never span layers.
        position = 0
        for segment in program.segments:
            assert segment.start == position
            position = segment.stop
            assert segment.layer is not None
        assert position == len(program)
        # Every segment fits one instruction-buffer refill.
        capacity = compiled.config.buffers.instruction_buffer
        assert all(s.size_bytes() <= capacity for s in program.segments)

    def test_per_layer_counts_match_mapping(self, compiled_hybrid):
        program = compiled_hybrid.program
        for info in compiled_hybrid.layers:
            segments = [program.segment_program(i) for i in info.segment_indices]
            broadcasts = sum(s.count(Opcode.BROADCAST) for s in segments)
            weight_loads = sum(s.count(Opcode.LOAD_WEIGHTS) for s in segments)
            write_backs = sum(s.count(Opcode.WRITE_BACK) for s in segments)
            assert broadcasts == info.filter_iterations * info.input_tiles
            assert weight_loads == info.filter_iterations
            assert write_backs == 1

    def test_metadata_only_emitted_under_weight_sparsity(self, alexnet_profile):
        dense = compile_model(alexnet_profile, variant="base")
        sparse = compile_model(alexnet_profile, variant="weight")
        assert dense.program.count(Opcode.LOAD_METADATA) == 0
        assert sparse.program.count(Opcode.LOAD_METADATA) > 0

    def test_expected_compute_cycles_use_q16_operands(self, compiled_hybrid):
        program = compiled_hybrid.program
        total = 0
        for instruction in program:
            if instruction.opcode is Opcode.BROADCAST:
                total += instruction.operand("cycles_q16") * instruction.repeats
        assert total / CYCLE_SCALE == pytest.approx(
            compiled_hybrid.expected_compute_cycles
        )

    def test_layer_lookup(self, compiled_hybrid):
        info = compiled_hybrid.layer(compiled_hybrid.layers[0].name)
        assert info is compiled_hybrid.layers[0]
        with pytest.raises(KeyError):
            compiled_hybrid.layer("no-such-layer")

    def test_missing_pass_fails_loudly(self, alexnet_profile):
        with pytest.raises(CompilationError, match="mapping"):
            compile_model(
                alexnet_profile, variant="base", passes=[ThresholdAssignmentPass()]
            )

    def test_tiny_instruction_buffer_rejected_at_compile_time(self, alexnet_profile):
        tiny = DBPIMConfig(buffers=BufferConfig(instruction_buffer=16))
        with pytest.raises(CompilationError, match="instruction"):
            compile_model(alexnet_profile, config=tiny, variant="base")


class TestProgramCompaction:
    def test_instructions_are_interned(self, compiled_hybrid):
        program = compiled_hybrid.program
        # The stream is large but backed by a tiny pool of unique objects.
        assert len(program) > 10_000
        assert program.unique_instructions < 300
        broadcasts = [
            i for i in program.instructions if i.opcode is Opcode.BROADCAST
        ]
        by_key = {}
        for instruction in broadcasts:
            key = tuple(sorted(instruction.operands.items()))
            by_key.setdefault(key, instruction)
            assert by_key[key] is instruction  # identical operands => same object

    def test_repeat_count_semantics(self):
        program = Program()
        program.append(Opcode.LOAD_FEATURES, repeats=3)
        program.append(Opcode.BROADCAST, cycles=8, repeats=3)
        program.append(Opcode.BARRIER)
        # Encoded length counts instructions once; dispatches expand repeats.
        assert len(program) == 3
        assert program.total_dispatches() == 7
        expanded = list(program.iter_dispatches())
        assert len(expanded) == 7
        assert [i.opcode for i in expanded[:3]] == [Opcode.LOAD_FEATURES] * 3
        # The streaming iterator is lazy.
        import types

        assert isinstance(program.iter_dispatches(), types.GeneratorType)

    def test_segment_slicing(self, compiled_hybrid):
        program = compiled_hybrid.program
        first = program.segment_program(0)
        segment = program.segments[0]
        assert len(first) == segment.num_instructions
        assert first.instructions == program.instructions[segment.start : segment.stop]
        sliced = program[segment.start : segment.stop]
        assert sliced.instructions == first.instructions
        assert program[0] is program.instructions[0]

    def test_extend_rebases_segments(self):
        a = Program()
        a.open_segment("s0")
        a.append(Opcode.BARRIER)
        a.close_segment()
        b = Program()
        b.open_segment("s1")
        b.append(Opcode.BARRIER)
        b.append(Opcode.BARRIER)
        b.close_segment()
        a.extend(b)
        assert [(s.name, s.start, s.stop) for s in a.segments] == [
            ("s0", 0, 1),
            ("s1", 1, 3),
        ]

    def test_segment_bookkeeping_errors(self):
        program = Program()
        program.open_segment("s")
        with pytest.raises(ValueError, match="still open"):
            program.open_segment("t")
        assert program.close_segment() is None  # empty segments are dropped
        with pytest.raises(ValueError, match="no segment"):
            program.close_segment()

    def test_instructions_per_iteration_helper(self):
        assert instructions_per_iteration(input_tiles=3, load_instructions=2) == 15
