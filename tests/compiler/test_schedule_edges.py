"""Edge-case tests for compiler scheduling plus the graph-aware passes:
empty modules, single-layer models, exact instruction-buffer boundaries,
elementwise fusion, and liveness-driven overlap decisions."""

import pytest

from repro.arch.config import BufferConfig, DBPIMConfig
from repro.compiler.codegen import emit_module
from repro.compiler.isa import Opcode
from repro.compiler.passes import epilogue_instructions_of
from repro.compiler.pipeline import (
    CompilationError,
    ModuleIR,
    PassManager,
    compile_model,
    default_passes,
    lower_model,
)
from repro.compiler.schedule import (
    LivenessInterval,
    ProgramSplitError,
    fusion_anchors,
    plan_feature_liveness,
    plan_layer_segments,
    resident_payload_at,
)
from repro.sim.cycle_model import CycleModel
from repro.sim.trace import TRACE_TOLERANCE, TraceSimulator, relative_cycle_error
from repro.workloads.graph import GRAPH_INPUT, GraphBuilder
from repro.workloads.models import ModelWorkload, get_workload
from repro.workloads.profiles import profile_model


def _residual_workload() -> ModelWorkload:
    g = GraphBuilder("tiny-residual")
    x = g.conv("stem", 3, 16, 3, 16)
    c1 = g.conv("conv1", 16, 16, 3, 16, inputs=x)
    c2 = g.conv("conv2", 16, 16, 3, 16, inputs=c1)
    g.add("join", c2, x)
    g.linear("fc", 16, 10, inputs="join")
    return ModelWorkload.from_graph(g.build(), redundancy=0.6, activation_density=0.5)


class TestScheduleEdgeCases:
    def test_empty_module_emits_empty_program(self):
        """An empty module runs the whole pass list and emits nothing."""
        workload = get_workload("alexnet")
        module = ModuleIR(workload=workload, config=DBPIMConfig(), variant="hybrid")
        PassManager(default_passes(module)[1:]).run(module)  # skip thresholds
        program, infos = emit_module(module)
        assert len(program) == 0
        assert infos == []
        assert program.segments == ()

    def test_single_layer_model_end_to_end(self):
        g = GraphBuilder("one-layer")
        g.conv("only", 3, 8, 3, 8)
        workload = ModelWorkload.from_graph(
            g.build(), redundancy=0.5, activation_density=0.5
        )
        profile = profile_model(workload, seed=0)
        compiled = compile_model(profile, variant="hybrid")
        assert [info.name for info in compiled.layers] == ["only"]
        trace = TraceSimulator().run(compiled)
        analytical = CycleModel().run_model(profile, "hybrid")
        assert relative_cycle_error(trace, analytical) <= TRACE_TOLERANCE

    def test_zero_iterations_produce_epilogue_only_plan(self):
        plans = plan_layer_segments(
            "degenerate",
            iterations=0,
            load_instructions=2,
            tile_instructions=8,
            epilogue_instructions=2,
            hoisted=False,
            capacity_bytes=64 * 8,
        )
        assert len(plans) == 1
        assert plans[0].iterations == 0
        assert plans[0].epilogue

    def test_zero_iterations_with_oversized_epilogue_raise(self):
        with pytest.raises(ProgramSplitError, match="epilogue"):
            plan_layer_segments(
                "degenerate",
                iterations=0,
                load_instructions=0,
                tile_instructions=0,
                epilogue_instructions=100,
                hoisted=False,
                capacity_bytes=8 * 8,
            )

    def test_negative_iterations_rejected(self):
        with pytest.raises(ProgramSplitError, match="non-negative"):
            plan_layer_segments(
                "bad",
                iterations=-1,
                load_instructions=1,
                tile_instructions=1,
                epilogue_instructions=1,
                hoisted=False,
                capacity_bytes=64,
            )

    def test_segment_boundary_exactly_on_capacity(self):
        """Chunks that divide the capacity exactly fill segments to the
        last instruction -- and the epilogue spills into its own segment."""
        # chunk = 8 + 1 + 1 = 10 instructions; capacity = 40 = 4 chunks.
        plans = plan_layer_segments(
            "exact",
            iterations=8,
            load_instructions=1,
            tile_instructions=8,
            epilogue_instructions=2,
            hoisted=False,
            capacity_bytes=40 * 8,
        )
        assert [p.iterations for p in plans] == [4, 4, 0]
        # Both full segments land exactly on the 40-instruction boundary.
        assert plans[0].iterations * 10 == 40
        assert plans[1].iterations * 10 == 40
        # The epilogue could not share the second (full) segment.
        assert plans[-1].epilogue and plans[-1].iterations == 0

    def test_epilogue_fits_exactly_into_last_segment(self):
        # Last segment holds 3 chunks (30) + epilogue (10) == capacity.
        plans = plan_layer_segments(
            "snug",
            iterations=7,
            load_instructions=1,
            tile_instructions=8,
            epilogue_instructions=10,
            hoisted=False,
            capacity_bytes=40 * 8,
        )
        assert [p.iterations for p in plans] == [4, 3]
        assert plans[-1].epilogue
        assert plans[-1].iterations * 10 + 10 == 40


class TestLivenessPlanning:
    @pytest.fixture(scope="class")
    def workload(self):
        return _residual_workload()

    def test_fusion_anchors(self, workload):
        anchors = fusion_anchors(workload.graph)
        assert anchors[GRAPH_INPUT] == -1
        assert anchors["stem"] == 0
        assert anchors["conv2"] == 2
        assert anchors["join"] == 2  # fused into conv2's epilogue
        assert anchors["fc"] == 3

    def test_liveness_intervals(self, workload):
        intervals = {
            i.value: i for i in plan_feature_liveness(workload.graph)
        }
        # The stem's output is consumed by conv1 and the join (anchor 2).
        assert (intervals["stem"].start, intervals["stem"].end) == (0, 2)
        # conv1 -> conv2 is a pure chain edge.
        assert (intervals["conv1"].start, intervals["conv1"].end) == (1, 2)
        # The join value (aliasing conv2's epilogue) feeds the fc layer.
        assert (intervals["join"].start, intervals["join"].end) == (2, 3)
        assert intervals["stem"].payload_bytes == 16 * 16 * 16
        assert intervals["stem"].spans_layers == 2

    def test_resident_payload_excludes_pure_chains(self, workload):
        intervals = plan_feature_liveness(workload.graph)
        payload = 16 * 16 * 16
        # While conv1 and conv2 run, the stem output is parked in the
        # feature buffer for the join; pure chain inputs never count.
        assert resident_payload_at(intervals, 0) == 0
        assert resident_payload_at(intervals, 1) == payload
        assert resident_payload_at(intervals, 2) == payload
        assert resident_payload_at(intervals, 3) == 0

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="start <= end"):
            LivenessInterval("v", 3, 2, 10)
        with pytest.raises(ValueError, match="non-negative"):
            LivenessInterval("v", 0, 1, -1)


class TestGraphPasses:
    @pytest.fixture(scope="class")
    def module(self):
        profile = profile_model(_residual_workload(), seed=0)
        module = lower_model(profile, variant="hybrid")
        PassManager(default_passes(module)).run(module)
        return module

    def test_fused_ops_recorded_on_anchor(self, module):
        by_name = {node.layer.name: node for node in module.layers}
        fused = by_name["conv2"].fused_ops
        assert [f.name for f in fused] == ["join"]
        assert fused[0].op == "add"
        assert fused[0].elements == 16 * 16 * 16
        assert fused[0].residual_bytes == 16 * 16 * 16
        assert by_name["stem"].fused_ops == ()

    def test_resident_bytes_annotated(self, module):
        by_name = {node.layer.name: node for node in module.layers}
        assert by_name["conv1"].resident_feature_bytes == 16 * 16 * 16
        assert by_name["stem"].resident_feature_bytes == 0
        assert module.liveness  # plan retained for reporting

    def test_epilogue_instruction_count_includes_residual_stream(self, module):
        by_name = {node.layer.name: node for node in module.layers}
        assert epilogue_instructions_of(by_name["stem"]) == 2
        assert epilogue_instructions_of(by_name["conv2"]) == 4

    def test_emitted_program_streams_residual(self, module):
        program, infos = emit_module(module)
        residual_loads = [
            i for i in program
            if i.opcode is Opcode.LOAD_FEATURES and i.operand("residual")
        ]
        assert len(residual_loads) == 1
        assert residual_loads[0].operand("bytes") == 16 * 16 * 16
        by_name = {info.name: info for info in infos}
        assert by_name["conv2"].fused_ops == ("join",)
        assert by_name["conv2"].residual_bytes == 16 * 16 * 16
        # The epilogue SIMD op covers the layer output plus the fused add.
        simd = [
            i for i in program if i.opcode is Opcode.SIMD_OP
        ]
        conv2_simd = max(i.operand("elements") for i in simd)
        assert conv2_simd == 2 * 16 * 16 * 16

    def test_trace_accounts_residual_traffic(self, module):
        profile = profile_model(_residual_workload(), seed=0)
        compiled = compile_model(profile, variant="hybrid")
        trace = TraceSimulator().run(compiled)
        by_name = {layer.name: layer for layer in trace.layers}
        assert by_name["conv2"].residual_feature_bytes == 16 * 16 * 16
        assert by_name["stem"].residual_feature_bytes == 0
        assert trace.residual_feature_bytes == 16 * 16 * 16

    def test_resident_bytes_can_revoke_double_buffering(self):
        """A feature buffer big enough for two tiles but not for the
        resident branch forces single-buffering on the branch layers."""
        profile = profile_model(_residual_workload(), seed=0)
        # Two 48-byte tiles fit 4096; 4096 bytes of resident branch do not.
        tiny = DBPIMConfig(buffers=BufferConfig(feature_buffer=4096))
        module = lower_model(profile, config=tiny, variant="hybrid")
        PassManager(default_passes(module)).run(module)
        by_name = {node.layer.name: node for node in module.layers}
        assert by_name["stem"].overlap.double_buffer_features
        assert not by_name["conv1"].overlap.double_buffer_features
        assert "resident" in by_name["conv1"].overlap.reason

    def test_mismatched_profile_and_graph_rejected(self):
        profile = profile_model(_residual_workload(), seed=0)
        other = profile_model(get_workload("alexnet"), seed=0)
        hybrid = type(profile)(
            workload=_residual_workload(), layers=other.layers
        )
        with pytest.raises(CompilationError, match="linearized schedule"):
            lower_model(hybrid, variant="hybrid")
