"""Tests for the compile-time weight transformation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.weight_transform import compress_filter, compress_layer
from repro.core.fta import approximate_layer


class TestCompressFilter:
    def test_round_trip_reconstruction(self):
        weights = np.array([64, -96, 0, 3, 1, -2])
        compressed = compress_filter(weights, threshold=2)
        np.testing.assert_array_equal(compressed.reconstruct(), weights)

    def test_padding_slots_marked_invalid(self):
        weights = np.array([64, 0, 1])  # needs 1, 0 and 1 blocks
        compressed = compress_filter(weights, threshold=2)
        assert compressed.slots == 2
        assert compressed.stored_blocks == 2
        assert compressed.storage_utilization == pytest.approx(2 / 6)

    def test_threshold_zero_uses_one_slot(self):
        compressed = compress_filter(np.zeros(4, dtype=np.int64), threshold=0)
        assert compressed.slots == 1
        assert compressed.stored_blocks == 0
        np.testing.assert_array_equal(compressed.reconstruct(), np.zeros(4))

    def test_overflowing_weight_rejected(self):
        with pytest.raises(ValueError):
            compress_filter(np.array([85]), threshold=2)  # 85 needs 4 blocks

    def test_byte_accounting(self):
        weights = np.array([3] * 16)
        compressed = compress_filter(weights, threshold=2)
        # 16 weights x 2 slots x 2 bits of value = 8 bytes.
        assert compressed.value_bytes() == 8
        # 16 x 2 x 3 metadata bits = 96 bits = 12 bytes.
        assert compressed.metadata_bytes() == 12


class TestCompressLayer:
    def test_layer_compression_round_trips(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-128, 128, size=(8, 32))
        approximated = approximate_layer(weights).approximated
        layer = compress_layer(weights)
        for index, compressed in enumerate(layer.filters):
            np.testing.assert_array_equal(
                compressed.reconstruct(), approximated[index]
            )

    def test_thresholds_match_fta(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-128, 128, size=(6, 16))
        layer = compress_layer(weights)
        expected = approximate_layer(weights).thresholds
        np.testing.assert_array_equal(layer.thresholds, expected)

    def test_compression_ratio_above_one_for_redundant_weights(self):
        # Mostly tiny weights: dense storage is 8 bits each, compressed is
        # ~2 bits of value + 3 bits of metadata per weight.
        weights = np.tile(np.array([[0, 1, 2, -1, 0, 4, 0, -2]]), (4, 8))
        layer = compress_layer(weights)
        assert layer.compression_ratio > 1.0
        assert layer.total_value_bytes < layer.dense_value_bytes()

    def test_storage_utilization_bounds(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(-128, 128, size=(4, 64))
        layer = compress_layer(weights)
        assert 0.0 < layer.storage_utilization <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=48)
)
def test_property_compress_reconstructs_fta_weights(values):
    weights = np.asarray(values).reshape(1, -1)
    approximated = approximate_layer(weights).approximated
    layer = compress_layer(weights)
    np.testing.assert_array_equal(layer.filters[0].reconstruct(), approximated[0])
