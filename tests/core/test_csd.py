"""Unit and property tests for the CSD encoding module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import csd


class TestScalarConversion:
    def test_zero(self):
        digits = csd.to_csd(0)
        assert digits.tolist() == [0] * 8
        assert csd.from_csd(digits) == 0

    def test_paper_example_positive(self):
        # 0111_1101 (125) encodes as 1000_0(-1)01 in CSD: 128 - 4 + 1 = 125.
        digits = csd.to_csd(125)
        assert csd.from_csd(digits) == 125
        assert csd.csd_to_string(digits) == "10000-01"

    def test_known_small_values(self):
        assert csd.to_csd(3).tolist()[:3] == [-1, 0, 1]  # 3 = 4 - 1
        assert csd.to_csd(7).tolist()[:4] == [-1, 0, 0, 1]  # 7 = 8 - 1
        assert csd.to_csd(5).tolist()[:3] == [1, 0, 1]  # 5 = 4 + 1

    def test_negative_values(self):
        assert csd.from_csd(csd.to_csd(-1)) == -1
        assert csd.from_csd(csd.to_csd(-128)) == -128
        assert csd.from_csd(csd.to_csd(-37)) == -37

    def test_range_limits(self):
        assert csd.max_value(8) == 170
        assert csd.min_value(8) == -170
        csd.to_csd(170)
        csd.to_csd(-170)
        with pytest.raises(ValueError):
            csd.to_csd(171)
        with pytest.raises(ValueError):
            csd.to_csd(-171)

    def test_width_parameter(self):
        digits = csd.to_csd(5, width=4)
        assert digits.size == 4
        assert csd.from_csd(digits) == 5
        with pytest.raises(ValueError):
            csd.to_csd(100, width=4)


class TestArrayConversion:
    def test_round_trip_full_int8_range(self):
        values = np.arange(-128, 128)
        digits = csd.to_csd_array(values)
        assert digits.shape == (256, 8)
        recovered = csd.from_csd_array(digits)
        np.testing.assert_array_equal(recovered, values)

    def test_matches_scalar_conversion(self):
        values = np.array([-128, -37, -1, 0, 1, 42, 66, 127])
        digits = csd.to_csd_array(values)
        for value, row in zip(values, digits):
            np.testing.assert_array_equal(row, csd.to_csd(int(value)))

    def test_multidimensional_shape_preserved(self):
        values = np.arange(-12, 12).reshape(2, 3, 4)
        digits = csd.to_csd_array(values)
        assert digits.shape == (2, 3, 4, 8)
        np.testing.assert_array_equal(csd.from_csd_array(digits), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            csd.to_csd_array(np.array([0, 500]))

    def test_empty_array(self):
        digits = csd.to_csd_array(np.array([], dtype=np.int64))
        assert digits.shape == (0, 8)


class TestInvariants:
    def test_every_int8_value_is_valid_csd(self):
        for value in range(-128, 128):
            assert csd.is_valid_csd(csd.to_csd(value))

    def test_is_valid_csd_rejects_adjacent_nonzeros(self):
        assert not csd.is_valid_csd([1, 1, 0, 0])
        assert not csd.is_valid_csd([0, -1, 1, 0])

    def test_is_valid_csd_rejects_bad_digits(self):
        assert not csd.is_valid_csd([2, 0, 0, 0])

    def test_csd_has_no_more_nonzeros_than_binary(self):
        values = np.arange(-128, 128)
        csd_counts = csd.count_nonzero_digits_array(values)
        binary_counts = csd.count_nonzero_bits_binary(np.abs(values))
        # CSD is minimal-weight: for non-negative magnitudes it never uses
        # more non-zero digits than the plain binary representation.
        assert np.all(csd_counts <= binary_counts + 0)

    def test_count_nonzero_digits_scalar(self):
        assert csd.count_nonzero_digits(0) == 0
        assert csd.count_nonzero_digits(64) == 1
        assert csd.count_nonzero_digits(66) == 2
        assert csd.count_nonzero_digits(127) == 2  # 128 - 1


class TestStringRendering:
    def test_round_trip(self):
        for value in (-128, -3, 0, 5, 66, 127):
            digits = csd.to_csd(value)
            text = csd.csd_to_string(digits)
            assert len(text) == 8
            recovered = csd.csd_from_string(text)
            np.testing.assert_array_equal(recovered, digits)

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            csd.csd_from_string("10x0")


class TestBinaryDigits:
    def test_unsigned_bits(self):
        bits = csd.binary_digits(np.array([5]))
        assert bits[0].tolist() == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_twos_complement_negative(self):
        bits = csd.binary_digits(np.array([-1]))
        assert bits[0].tolist() == [1] * 8

    def test_count_nonzero_bits(self):
        counts = csd.count_nonzero_bits_binary(np.array([0, 1, 255, -1]))
        assert counts.tolist() == [0, 1, 8, 8]


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-170, max_value=170))
def test_property_round_trip(value):
    digits = csd.to_csd(value)
    assert csd.from_csd(digits) == value


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-170, max_value=170))
def test_property_no_adjacent_nonzeros(value):
    assert csd.is_valid_csd(csd.to_csd(value))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=64)
)
def test_property_array_matches_scalar(values):
    arr = np.asarray(values)
    digits = csd.to_csd_array(arr)
    for value, row in zip(values, digits):
        np.testing.assert_array_equal(row, csd.to_csd(value))


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-170, max_value=170), st.integers(min_value=-170, max_value=170))
def test_property_csd_is_minimal_weight_vs_shifted(a, b):
    # The CSD non-zero count of a value never exceeds the count of any other
    # signed-digit representation; in particular the sum of counts of two
    # values is an upper bound on the count of their sum when representable.
    total = a + b
    if -170 <= total <= 170:
        count_sum = csd.count_nonzero_digits(total)
        assert count_sum <= csd.count_nonzero_digits(a) + csd.count_nonzero_digits(b)
