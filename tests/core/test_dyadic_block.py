"""Tests for the dyadic block decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import csd
from repro.core.dyadic_block import (
    BlockedWeight,
    DyadicBlock,
    block_count,
    blocks_of_value,
    nonzero_blocks_of_value,
    reconstruct_value,
    split_blocks,
)


class TestDyadicBlock:
    def test_zero_pattern(self):
        block = DyadicBlock(index=0, low=0, high=0)
        assert block.is_zero
        assert not block.is_comp
        assert block.value == 0
        assert block.sign == 0

    def test_comp_patterns(self):
        assert DyadicBlock(0, 1, 0).value == 1
        assert DyadicBlock(0, 0, 1).value == 2
        assert DyadicBlock(0, -1, 0).value == -1
        assert DyadicBlock(0, 0, -1).value == -2
        assert DyadicBlock(3, 0, 1).value == 128
        assert DyadicBlock(3, 0, -1).value == -128

    def test_bit_position(self):
        assert DyadicBlock(2, 1, 0).bit_position == 4
        assert DyadicBlock(2, 0, 1).bit_position == 5
        with pytest.raises(ValueError):
            DyadicBlock(1, 0, 0).bit_position

    def test_cell_bits(self):
        assert DyadicBlock(0, 1, 0).cell_bits() == (1, 0)
        assert DyadicBlock(0, 0, -1).cell_bits() == (0, 1)
        with pytest.raises(ValueError):
            DyadicBlock(0, 0, 0).cell_bits()

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            DyadicBlock(0, 1, 1)
        with pytest.raises(ValueError):
            DyadicBlock(0, 2, 0)
        with pytest.raises(ValueError):
            DyadicBlock(-1, 1, 0)


class TestSplitBlocks:
    def test_paper_example(self):
        # f1_th(0) = 0100_0010 CSD = 66 decomposes into 01|00|00|10.
        blocks = blocks_of_value(66)
        assert len(blocks) == 4
        assert blocks[0].is_comp and blocks[0].value == 2
        assert blocks[1].is_zero
        assert blocks[2].is_zero
        assert blocks[3].is_comp and blocks[3].value == 64

    def test_block_count(self):
        assert block_count(8) == 4
        assert block_count(16) == 8
        with pytest.raises(ValueError):
            block_count(7)

    def test_rejects_invalid_csd(self):
        with pytest.raises(ValueError):
            split_blocks([1, 1, 0, 0, 0, 0, 0, 0])

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            split_blocks([1, 0, 0])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros((2, 8), dtype=np.int8))


class TestNonzeroBlocks:
    def test_metadata_of_paper_example(self):
        blocked = nonzero_blocks_of_value(66)
        assert blocked.phi == 2
        assert blocked.indices == [0, 3]
        assert blocked.signs == [1, 1]
        assert blocked.reconstruct() == 66

    def test_negative_value(self):
        blocked = nonzero_blocks_of_value(-96)  # -128 + 32
        assert blocked.reconstruct() == -96
        assert all(block.is_comp for block in blocked.blocks)

    def test_zero_value_has_no_blocks(self):
        blocked = nonzero_blocks_of_value(0)
        assert blocked.phi == 0
        assert blocked.reconstruct() == 0

    def test_phi_matches_csd_count(self):
        for value in range(-128, 128):
            blocked = nonzero_blocks_of_value(value)
            assert blocked.phi == csd.count_nonzero_digits(value)

    def test_blocked_weight_is_immutable_record(self):
        blocked = nonzero_blocks_of_value(5)
        assert isinstance(blocked, BlockedWeight)
        with pytest.raises(AttributeError):
            blocked.value = 7


class TestReconstruction:
    def test_reconstruct_value(self):
        blocks = blocks_of_value(-77)
        assert reconstruct_value(blocks) == -77

    def test_every_int8_round_trips(self):
        for value in range(-128, 128):
            assert nonzero_blocks_of_value(value).reconstruct() == value


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-170, max_value=170))
def test_property_block_reconstruction(value):
    assert nonzero_blocks_of_value(value).reconstruct() == value


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-170, max_value=170))
def test_property_each_block_has_at_most_one_nonzero(value):
    for block in blocks_of_value(value):
        assert (block.low == 0) or (block.high == 0)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-170, max_value=170))
def test_property_indices_are_unique_and_sorted(value):
    blocked = nonzero_blocks_of_value(value)
    indices = blocked.indices
    assert indices == sorted(indices)
    assert len(indices) == len(set(indices))
