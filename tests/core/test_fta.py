"""Tests for the Fixed Threshold Approximation algorithm (Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import csd
from repro.core.fta import (
    FTAConfig,
    approximate_filter,
    approximate_layer,
    approximate_model,
    filter_threshold,
)
from repro.core.query_table import QueryTableMode, build_table


class TestFilterThreshold:
    def test_all_zero_filter(self):
        assert filter_threshold(np.zeros(16, dtype=np.int64)) == 0

    def test_mode_zero_maps_to_one(self):
        # Majority of weights are zero but a few are not: mode is 0 -> φ_th=1.
        weights = np.array([0] * 10 + [1, 2, 64])
        assert filter_threshold(weights) == 1

    def test_mode_one(self):
        weights = np.array([1, 2, 4, 8, 16, 3])  # five φ=1 weights, one φ=2
        assert filter_threshold(weights) == 1

    def test_mode_two(self):
        weights = np.array([3, 5, 6, 9, 10, 1])  # mostly φ=2
        assert filter_threshold(weights) == 2

    def test_mode_above_two_is_clipped(self):
        # 85 = 64+16+4+1 has φ=4; a filter full of such values clips to 2.
        weights = np.array([85, 85, 85, 85, -85])
        assert filter_threshold(weights) == 2

    def test_custom_max_threshold(self):
        config = FTAConfig(max_threshold=3)
        weights = np.array([85, 85, 85, 85])
        assert filter_threshold(weights, config) == 3

    def test_empty_filter_rejected(self):
        with pytest.raises(ValueError):
            filter_threshold(np.array([], dtype=np.int64))


class TestApproximateFilter:
    def test_all_zero_filter_stays_zero(self):
        result = approximate_filter(np.zeros(8, dtype=np.int64))
        assert result.threshold == 0
        assert np.all(result.approximated == 0)

    def test_weights_already_conforming_are_unchanged(self):
        weights = np.array([1, 2, 4, -8, 16, 64, 0, 0])
        result = approximate_filter(weights)
        assert result.threshold == 1
        np.testing.assert_array_equal(result.approximated, weights)

    def test_output_within_query_table(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(-128, 128, size=64)
        config = FTAConfig()
        result = approximate_filter(weights, config)
        table = set(
            build_table(result.threshold, mode=config.table_mode)
        ) if result.threshold > 0 else {0}
        assert set(result.approximated.tolist()) <= table

    def test_exact_mode_forces_exact_counts(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-128, 128, size=64)
        config = FTAConfig(table_mode=QueryTableMode.EXACT)
        result = approximate_filter(weights, config)
        if result.threshold > 0:
            counts = csd.count_nonzero_digits_array(result.approximated)
            assert np.all(counts == result.threshold)

    def test_at_most_mode_bounds_counts(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(-128, 128, size=64)
        result = approximate_filter(weights)
        counts = csd.count_nonzero_digits_array(result.approximated)
        assert np.all(counts <= result.threshold)

    def test_shape_preserved(self):
        weights = np.arange(-32, 32).reshape(4, 4, 4)
        result = approximate_filter(weights)
        assert result.approximated.shape == (4, 4, 4)
        assert result.phi_counts.shape == (4, 4, 4)

    def test_mean_absolute_error_reported(self):
        weights = np.array([7, 7, 7, 7])
        result = approximate_filter(weights)
        assert result.mean_absolute_error >= 0.0
        assert result.num_weights == 4


class TestApproximateLayer:
    def test_per_filter_thresholds(self):
        layer = np.stack(
            [
                np.array([1, 2, 4, 8]),  # φ_th = 1
                np.array([3, 5, 6, 9]),  # φ_th = 2
                np.zeros(4, dtype=np.int64),  # φ_th = 0
            ]
        )
        result = approximate_layer(layer)
        assert result.thresholds.tolist() == [1, 2, 0]

    def test_threshold_histogram(self):
        layer = np.stack([np.array([1, 2]), np.array([3, 5]), np.array([1, 4])])
        histogram = approximate_layer(layer).threshold_histogram()
        assert histogram == {1: 2, 2: 1}

    def test_stacked_outputs(self):
        rng = np.random.default_rng(3)
        layer = rng.integers(-128, 128, size=(8, 32))
        result = approximate_layer(layer)
        assert result.approximated.shape == (8, 32)
        assert result.original.shape == (8, 32)
        np.testing.assert_array_equal(result.original, layer)

    def test_one_dimensional_layer_treated_as_filters(self):
        result = approximate_layer(np.array([1, 3, 5]))
        assert len(result.filters) == 3

    def test_empty_layer_rejected(self):
        with pytest.raises(ValueError):
            approximate_layer(np.zeros((0, 4), dtype=np.int64))


class TestApproximateModel:
    def test_multiple_layers(self):
        rng = np.random.default_rng(4)
        layers = [rng.integers(-128, 128, size=(4, 16)) for _ in range(3)]
        results = approximate_model(layers)
        assert len(results) == 3
        for layer, result in zip(layers, results):
            assert result.approximated.shape == layer.shape


class TestConfigValidation:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            FTAConfig(table_mode="nope")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FTAConfig(max_threshold=-1)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            FTAConfig(value_low=5, value_high=1)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=64)
)
def test_property_threshold_in_valid_range(weights):
    threshold = filter_threshold(np.asarray(weights))
    assert 0 <= threshold <= 2


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=64)
)
def test_property_approximation_bounded_counts(weights):
    result = approximate_filter(np.asarray(weights))
    counts = csd.count_nonzero_digits_array(result.approximated)
    assert np.all(counts <= max(result.threshold, 0))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=64)
)
def test_property_approximation_error_is_bounded(weights):
    # Snapping to the at-most table can never move a weight further than the
    # spacing of the φ=1 table (the coarsest non-trivial grid).  Over the
    # INT8 domain the largest gap is between 64 and 127 (128 is outside the
    # domain), so the worst-case perturbation is 63.
    result = approximate_filter(np.asarray(weights))
    if result.threshold >= 1:
        assert np.abs(result.approximated - result.original).max() <= 63
