"""Tests for the quantization toolbox."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import csd
from repro.core.quantization import (
    dequantize,
    fake_quantize_activations,
    fake_quantize_weights,
    fta_quantize_weights,
    quantize_activations,
    quantize_weights,
)


class TestWeightQuantization:
    def test_int8_range(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(8, 16))
        quantized, params = quantize_weights(weights)
        assert quantized.min() >= -127 and quantized.max() <= 127
        assert params.low == -127 and params.high == 127
        assert params.num_bits == 8

    def test_per_channel_scales(self):
        weights = np.stack([np.full(4, 1.0), np.full(4, 0.01)])
        quantized, params = quantize_weights(weights, per_channel=True)
        assert params.scale.shape == (2,)
        # Both channels should saturate their own grid despite the magnitude
        # difference.
        assert np.abs(quantized[0]).max() == 127
        assert np.abs(quantized[1]).max() == 127

    def test_per_tensor_scale(self):
        weights = np.stack([np.full(4, 1.0), np.full(4, 0.01)])
        quantized, params = quantize_weights(weights, per_channel=False)
        assert params.scale.ndim == 0 or params.scale.size == 1
        assert np.abs(quantized[1]).max() <= 2

    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(4, 32))
        quantized, params = quantize_weights(weights)
        recovered = dequantize(quantized, params)
        scale = params.scale.reshape(-1, 1)
        assert np.all(np.abs(recovered - weights) <= scale / 2 + 1e-12)

    def test_lower_bit_width(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(4, 8))
        quantized, params = quantize_weights(weights, num_bits=4)
        assert quantized.min() >= -7 and quantized.max() <= 7
        assert params.num_bits == 4

    def test_zero_weights(self):
        quantized, params = quantize_weights(np.zeros((2, 4)))
        assert np.all(quantized == 0)
        recovered = dequantize(quantized, params)
        assert np.all(recovered == 0)


class TestActivationQuantization:
    def test_unsigned_range(self):
        rng = np.random.default_rng(3)
        activations = np.abs(rng.normal(size=(4, 8)))
        quantized, params = quantize_activations(activations)
        assert quantized.min() >= 0 and quantized.max() <= 255
        assert params.low == 0 and params.high == 255

    def test_signed_range(self):
        rng = np.random.default_rng(4)
        activations = rng.normal(size=(4, 8))
        quantized, params = quantize_activations(activations, signed=True)
        assert quantized.min() >= -127 and quantized.max() <= 127

    def test_round_trip_error(self):
        rng = np.random.default_rng(5)
        activations = np.abs(rng.normal(size=64))
        quantized, params = quantize_activations(activations)
        recovered = dequantize(quantized, params)
        assert np.all(np.abs(recovered - activations) <= float(params.scale) / 2 + 1e-12)


class TestFakeQuantization:
    def test_fake_weight_quantization_close_to_original(self):
        rng = np.random.default_rng(6)
        weights = rng.normal(size=(8, 8))
        fake = fake_quantize_weights(weights)
        assert fake.shape == weights.shape
        assert np.abs(fake - weights).max() < np.abs(weights).max() / 64

    def test_fake_activation_quantization(self):
        rng = np.random.default_rng(7)
        activations = np.abs(rng.normal(size=(8, 8)))
        fake = fake_quantize_activations(activations)
        assert fake.shape == activations.shape
        assert np.all(fake >= 0)


class TestFTAQuantization:
    def test_shapes_and_thresholds(self):
        rng = np.random.default_rng(8)
        weights = rng.normal(size=(6, 3, 3, 3))
        quantized, approximated, params, thresholds = fta_quantize_weights(weights)
        assert quantized.shape == weights.shape
        assert approximated.shape == weights.shape
        assert thresholds.shape == (6,)
        assert np.all((thresholds >= 0) & (thresholds <= 2))

    def test_approximated_respects_thresholds(self):
        rng = np.random.default_rng(9)
        weights = rng.normal(size=(4, 16))
        _, approximated, _, thresholds = fta_quantize_weights(weights)
        for filter_index in range(4):
            counts = csd.count_nonzero_digits_array(approximated[filter_index])
            assert np.all(counts <= thresholds[filter_index])

    def test_channel_axis_moved(self):
        rng = np.random.default_rng(10)
        weights = rng.normal(size=(3, 3, 5))  # channels last
        quantized, approximated, params, thresholds = fta_quantize_weights(
            weights, channel_axis=2
        )
        assert thresholds.shape == (5,)
        assert quantized.shape == (5, 3, 3)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=16),
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
)
def test_property_quantization_round_trip_error(weights):
    quantized, params = quantize_weights(weights, per_channel=False)
    recovered = dequantize(quantized, params)
    scale = float(np.asarray(params.scale).reshape(-1)[0])
    assert np.all(np.abs(recovered - weights) <= scale / 2 + 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=(4, 8),
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
)
def test_property_fta_quantization_stays_in_int8(weights):
    quantized, approximated, _, _ = fta_quantize_weights(weights)
    assert quantized.min() >= -127 and quantized.max() <= 127
    assert approximated.min() >= -128 and approximated.max() <= 127
