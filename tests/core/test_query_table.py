"""Tests for the FTA query tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import csd
from repro.core.query_table import (
    QueryTableMode,
    build_table,
    max_phi,
    nearest_in_table,
    nearest_in_table_array,
)


class TestBuildTable:
    def test_phi_zero_is_only_zero(self):
        assert build_table(0, mode=QueryTableMode.EXACT) == (0,)
        assert build_table(0, mode=QueryTableMode.AT_MOST) == (0,)

    def test_phi_one_exact_is_signed_powers_of_two(self):
        table = build_table(1, mode=QueryTableMode.EXACT)
        expected = sorted(
            [-128, -64, -32, -16, -8, -4, -2, -1, 1, 2, 4, 8, 16, 32, 64]
        )
        assert list(table) == expected

    def test_phi_one_at_most_includes_zero(self):
        table = build_table(1, mode=QueryTableMode.AT_MOST)
        assert 0 in table
        assert 1 in table and -128 in table

    def test_at_most_is_superset_of_exact(self):
        for phi in range(0, 5):
            exact = set(build_table(phi, mode=QueryTableMode.EXACT))
            at_most = set(build_table(phi, mode=QueryTableMode.AT_MOST))
            assert exact <= at_most

    def test_exact_entries_have_exact_counts(self):
        for phi in range(0, 5):
            for value in build_table(phi, mode=QueryTableMode.EXACT):
                assert csd.count_nonzero_digits(value) == phi

    def test_at_most_entries_have_bounded_counts(self):
        for phi in range(0, 5):
            for value in build_table(phi, mode=QueryTableMode.AT_MOST):
                assert csd.count_nonzero_digits(value) <= phi

    def test_at_most_phi4_covers_full_int8_range(self):
        table = build_table(4, mode=QueryTableMode.AT_MOST)
        assert list(table) == list(range(-128, 128))

    def test_max_phi(self):
        assert max_phi(8) == 4
        assert max_phi(7) == 4
        assert max_phi(4) == 2

    def test_invalid_phi_rejected(self):
        with pytest.raises(ValueError):
            build_table(-1)
        with pytest.raises(ValueError):
            build_table(5, width=8)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            build_table(1, mode="bogus")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            build_table(1, low=10, high=5)

    def test_custom_range(self):
        table = build_table(1, low=0, high=15, mode=QueryTableMode.EXACT)
        assert list(table) == [1, 2, 4, 8]


class TestNearest:
    def test_exact_member_is_returned(self):
        assert nearest_in_table(64, 1) == 64
        assert nearest_in_table(0, 2) == 0

    def test_snapping_small_values_phi_one_exact(self):
        # With the exact table the nearest power of two is chosen.
        assert nearest_in_table(3, 1, mode=QueryTableMode.EXACT) in (2, 4)
        assert nearest_in_table(0, 1, mode=QueryTableMode.EXACT) in (-1, 1)

    def test_at_most_keeps_zero(self):
        assert nearest_in_table(0, 1, mode=QueryTableMode.AT_MOST) == 0

    def test_tie_breaks_toward_smaller_magnitude(self):
        # 3 is equidistant from 2 and 4 in the exact φ=1 table.
        assert nearest_in_table(3, 1, mode=QueryTableMode.EXACT) == 2
        assert nearest_in_table(-3, 1, mode=QueryTableMode.EXACT) == -2

    def test_array_matches_scalar(self):
        values = np.arange(-128, 128)
        for mode in (QueryTableMode.EXACT, QueryTableMode.AT_MOST):
            for phi in (1, 2):
                array_result = nearest_in_table_array(values, phi, mode=mode)
                scalar_result = np.array(
                    [nearest_in_table(int(v), phi, mode=mode) for v in values]
                )
                distance_array = np.abs(array_result - values)
                distance_scalar = np.abs(scalar_result - values)
                # Both must achieve the optimal distance (tie-break may differ
                # only between equally distant candidates).
                np.testing.assert_array_equal(distance_array, distance_scalar)

    def test_array_preserves_shape(self):
        values = np.arange(-8, 8).reshape(4, 4)
        result = nearest_in_table_array(values, 2)
        assert result.shape == (4, 4)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=-128, max_value=127),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([QueryTableMode.EXACT, QueryTableMode.AT_MOST]),
)
def test_property_nearest_is_member_and_optimal(value, phi, mode):
    table = build_table(phi, mode=mode)
    nearest = nearest_in_table(value, phi, mode=mode)
    assert nearest in table
    best = min(abs(t - value) for t in table)
    assert abs(nearest - value) == best


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=1, max_size=32),
    st.integers(min_value=1, max_value=4),
)
def test_property_array_nearest_is_optimal(values, phi):
    arr = np.asarray(values)
    table = build_table(phi, mode=QueryTableMode.AT_MOST)
    result = nearest_in_table_array(arr, phi, mode=QueryTableMode.AT_MOST)
    for value, snapped in zip(values, result):
        assert int(snapped) in table
        best = min(abs(t - value) for t in table)
        assert abs(int(snapped) - value) == best
