"""Tests for the bit-level sparsity analytics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparsity import (
    analyze_input_sparsity,
    analyze_weight_sparsity,
    input_block_zero_column_ratio,
    input_zero_bit_ratio,
    weight_zero_bit_ratio_binary,
    weight_zero_bit_ratio_csd,
    weight_zero_bit_ratio_fta,
)


class TestWeightSparsity:
    def test_all_zero_weights(self):
        weights = np.zeros((4, 8), dtype=np.int64)
        assert weight_zero_bit_ratio_binary(weights) == 1.0
        assert weight_zero_bit_ratio_csd(weights) == 1.0
        assert weight_zero_bit_ratio_fta(weights) == 1.0

    def test_known_binary_ratio(self):
        weights = np.array([[255 - 256, 0]])  # -1 has eight set bits
        assert weight_zero_bit_ratio_binary(weights) == 0.5

    def test_csd_at_least_as_sparse_as_binary_for_positive(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 128, size=(16, 64))
        assert weight_zero_bit_ratio_csd(weights) >= weight_zero_bit_ratio_binary(
            weights
        )

    def test_fta_at_least_as_sparse_as_csd(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(-128, 128, size=(16, 64))
        assert weight_zero_bit_ratio_fta(weights) >= weight_zero_bit_ratio_csd(
            weights
        ) - 1e-12

    def test_report_aggregation(self):
        rng = np.random.default_rng(2)
        layers = [rng.integers(-128, 128, size=(8, 32)) for _ in range(3)]
        report = analyze_weight_sparsity(layers)
        assert 0.0 <= report.binary <= 1.0
        assert 0.0 <= report.csd <= 1.0
        assert 0.0 <= report.fta <= 1.0
        assert report.fta >= report.csd - 1e-12
        assert report.num_weights == sum(layer.size for layer in layers)
        assert set(report.as_dict()) == {"binary", "csd", "fta"}

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            weight_zero_bit_ratio_binary(np.zeros((0,), dtype=np.int64))
        with pytest.raises(ValueError):
            analyze_weight_sparsity([])


class TestInputSparsity:
    def test_zero_activations(self):
        activations = np.zeros(64, dtype=np.int64)
        assert input_zero_bit_ratio(activations) == 1.0
        assert input_block_zero_column_ratio(activations, 8) == 1.0

    def test_dense_activations(self):
        activations = np.full(64, 255, dtype=np.int64)
        assert input_zero_bit_ratio(activations) == 0.0
        assert input_block_zero_column_ratio(activations, 8) == 0.0

    def test_group_size_one_equals_bit_ratio(self):
        rng = np.random.default_rng(3)
        activations = rng.integers(0, 256, size=256)
        assert input_block_zero_column_ratio(activations, 1) == pytest.approx(
            input_zero_bit_ratio(activations)
        )

    def test_larger_groups_have_lower_ratio(self):
        rng = np.random.default_rng(4)
        activations = rng.integers(0, 64, size=1024)
        ratios = analyze_input_sparsity(activations, group_sizes=(1, 8, 16))
        assert ratios[1] >= ratios[8] >= ratios[16]

    def test_negative_activations_rejected(self):
        with pytest.raises(ValueError):
            input_zero_bit_ratio(np.array([-1, 2]))
        with pytest.raises(ValueError):
            input_block_zero_column_ratio(np.array([-1, 2]), 2)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            input_block_zero_column_ratio(np.array([1, 2]), 0)
        with pytest.raises(ValueError):
            input_block_zero_column_ratio(np.array([1, 2]), 4)

    def test_column_skipping_known_pattern(self):
        # Eight activations whose bit 7 is always zero and bit 0 always one:
        # exactly bits 1..7 columns are zero except bit 0.
        activations = np.full(8, 1, dtype=np.int64)
        ratio = input_block_zero_column_ratio(activations, 8)
        assert ratio == pytest.approx(7 / 8)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=16, max_size=128)
)
def test_property_group_monotonicity(values):
    activations = np.asarray(values)
    ratio_small = input_block_zero_column_ratio(activations, 1)
    ratio_large = input_block_zero_column_ratio(activations, 8)
    # A column of a larger group is zero only if every sub-column is zero.
    assert ratio_large <= ratio_small + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=-128, max_value=127), min_size=8, max_size=64)
)
def test_property_ratios_are_probabilities(values):
    weights = np.asarray(values).reshape(1, -1)
    for ratio in (
        weight_zero_bit_ratio_binary(weights),
        weight_zero_bit_ratio_csd(weights),
        weight_zero_bit_ratio_fta(weights),
    ):
        assert 0.0 <= ratio <= 1.0
