"""Tests for the shared-directory broker transport and ``repro worker``.

The crown jewel here is the fault-injection suite: a real worker
subprocess SIGKILLed mid-shard must be detected via its dead lease, its
shard requeued, and the finished multi-worker sweep must serialise
byte-for-byte identically to the serial transport.  The directory
protocol (manifest, leases, fragments) is pinned at the unit level too,
so crash-safety properties do not silently regress.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api import run_sweep
from repro.api.sweep import SweepShard, build_grid
from repro.dist.broker import (
    BrokerTransport,
    DirectoryBroker,
    MANIFEST_FORMAT,
    SweepManifestError,
)
from repro.dist.transport import TransportError, WorkerLostError
from repro.dist.worker import WorkerConfig, run_worker

GRID_KWARGS = dict(
    experiments=("fig7", "table4"), models=("alexnet", "mobilenetv2")
)
SMALL_KWARGS = dict(experiments=("table4",), models=("alexnet",))

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _worker_env():
    env = dict(os.environ)
    path = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR if not path else SRC_DIR + os.pathsep + path
    return env


def _spawn(script: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(script)],
        env=_worker_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _reap_in_background(process: subprocess.Popen) -> None:
    """Reap the process the moment it dies.

    The SIGKILLed victim is a *child of this test process* (which is also
    the coordinator); until someone wait()s on it, it lingers as a zombie
    and the broker's PID probe still counts it as alive.  In a real
    deployment workers are not the coordinator's children, so reaping in
    a background thread restores the production topology.
    """
    threading.Thread(target=process.wait, daemon=True).start()


def _shard(index, *, indices=(0,)):
    return SweepShard(index=index, indices=tuple(indices), points=())


@pytest.fixture(scope="module")
def serial_small():
    return run_sweep(transport="serial", **SMALL_KWARGS)


class TestDirectoryProtocol:
    def test_publish_and_read_manifest_roundtrip(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.publish([_shard(0), _shard(1, indices=(1, 2))], "sweep-1")
        manifest = broker.read_manifest()
        assert manifest["kind"] == "sweep-manifest"
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["sweep_id"] == "sweep-1"
        assert manifest["shards"] == [0, 1]
        assert manifest["points"] == {"0": 0, "1": 0}
        assert broker.load_task(1).indices == (1, 2)

    def test_republish_clears_stale_state(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.publish([_shard(0), _shard(1)], "old")
        broker.try_lease(1, "ghost")
        broker.write_failure(1, "boom", None, "ghost", "old")
        broker.write_stop()
        broker.publish([_shard(0)], "new")
        assert broker.read_manifest()["shards"] == [0]
        assert broker.lease_info(1) is None
        assert not broker.has_result(1)
        assert not broker.stopped()
        with pytest.raises(SweepManifestError, match="missing"):
            broker.load_task(1)

    def test_missing_manifest_times_out(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        with pytest.raises(SweepManifestError, match="no sweep manifest"):
            broker.read_manifest(wait_s=0.0)

    def test_mixed_version_manifest_is_rejected(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.publish([_shard(0)], "sweep-1")
        payload = json.loads(broker.manifest_path.read_text())
        payload["version"] = "0.0.0"
        broker.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SweepManifestError, match="mixed-version"):
            broker.read_manifest()

    def test_foreign_format_manifest_is_rejected(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.publish([_shard(0)], "sweep-1")
        payload = json.loads(broker.manifest_path.read_text())
        payload["format"] = MANIFEST_FORMAT + 1
        broker.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SweepManifestError, match="unsupported format"):
            broker.read_manifest()

    def test_lease_claim_is_exclusive(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        assert broker.try_lease(0, "alice")
        assert not broker.try_lease(0, "bob")
        info = broker.lease_info(0)
        assert info["worker"] == "alice"
        assert info["pid"] == os.getpid()
        assert info["host"] == socket.gethostname()
        broker.release_lease(0)
        assert broker.lease_info(0) is None
        assert broker.try_lease(0, "bob")

    def test_heartbeat_refreshes_only_own_lease(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        broker.try_lease(0, "alice")
        before = broker.lease_info(0)["time"]
        time.sleep(0.01)
        assert broker.heartbeat_lease(0, "alice")
        assert broker.lease_info(0)["time"] > before
        assert not broker.heartbeat_lease(0, "bob")
        assert not broker.heartbeat_lease(1, "alice")

    def test_lease_death_detection(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        host = socket.gethostname()
        # Live same-host holder with a fresh heartbeat: alive.
        alive = {"pid": os.getpid(), "host": host, "time": time.time()}
        assert not broker.lease_is_dead(alive, lease_ttl_s=10.0)
        # Dead same-host holder: detected by the PID probe regardless of
        # how fresh the heartbeat stamp looks.
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(probe.stdout.strip())
        sigkilled = {"pid": dead_pid, "host": host, "time": time.time()}
        assert broker.lease_is_dead(sigkilled, lease_ttl_s=1000.0)
        # Cross-host holder: only the heartbeat TTL applies.
        remote = {"pid": 1, "host": "elsewhere", "time": time.time() - 60.0}
        assert broker.lease_is_dead(remote, lease_ttl_s=10.0)
        assert not broker.lease_is_dead(
            {"pid": 1, "host": "elsewhere", "time": time.time()},
            lease_ttl_s=10.0,
        )
        # Torn/damaged lease payloads only have the TTL; no liveness data
        # means presumed dead.
        assert broker.lease_is_dead({}, lease_ttl_s=10.0)
        assert not broker.lease_is_dead(None, lease_ttl_s=10.0)

    def test_outcome_fragment_roundtrip(self, tmp_path, serial_small):
        broker = DirectoryBroker(tmp_path)
        outcomes = [
            (index, result, False)
            for index, result in enumerate(serial_small.results)
        ]
        broker.write_outcomes(3, outcomes, "alice", "sweep-1")
        kind, payload = broker.read_result(3, "sweep-1")
        assert kind == "ok"
        assert [
            (index, result.to_dict(), hit) for index, result, hit in payload
        ] == [
            (index, result.to_dict(), hit) for index, result, hit in outcomes
        ]

    def test_duplicate_fragment_write_is_idempotent(
        self, tmp_path, serial_small
    ):
        broker = DirectoryBroker(tmp_path)
        outcomes = [
            (index, result, True)
            for index, result in enumerate(serial_small.results)
        ]
        broker.write_outcomes(0, outcomes, "alice", "sweep-1")
        first = broker.result_path(0).read_bytes()
        # A worker that outlived its broken lease publishes again: the
        # fragment is atomically replaced with identical content.
        broker.write_outcomes(0, outcomes, "alice", "sweep-1")
        assert broker.result_path(0).read_bytes() == first

    def test_foreign_sweep_fragment_reads_damaged(
        self, tmp_path, serial_small
    ):
        broker = DirectoryBroker(tmp_path)
        outcomes = [(0, serial_small.results[0], False)]
        broker.write_outcomes(0, outcomes, "alice", "previous-sweep")
        kind, reason = broker.read_result(0, "current-sweep")
        assert kind == "damaged"
        assert "previous-sweep" in reason
        broker.discard_result(0)
        assert broker.read_result(0, "current-sweep") is None

    def test_truncated_fragment_reads_damaged(self, tmp_path, serial_small):
        broker = DirectoryBroker(tmp_path)
        outcomes = [(0, serial_small.results[0], False)]
        broker.write_outcomes(0, outcomes, "alice", "sweep-1")
        lines = broker.result_path(0).read_text().splitlines()
        broker.result_path(0).write_text(lines[0] + "\n")  # drop outcomes
        kind, reason = broker.read_result(0, "sweep-1")
        assert kind == "damaged"
        assert "promises" in reason

    def test_failure_fragment_roundtrip(self, tmp_path):
        broker = DirectoryBroker(tmp_path)
        point = {
            "experiment": "fig7",
            "config": "paper-28nm",
            "seed": 0,
            "params": {},
            "engine": "vectorized",
        }
        broker.write_failure(2, "point exploded", point, "alice", "sweep-1")
        kind, (message, payload) = broker.read_result(2, "sweep-1")
        assert kind == "error"
        assert message == "point exploded"
        assert payload == point


class TestBrokerSweep:
    def test_zero_worker_sweep_matches_serial(self, tmp_path):
        serial = run_sweep(transport="serial", **GRID_KWARGS)
        distributed = run_sweep(
            transport="broker", sweep_dir=tmp_path / "sweep", **GRID_KWARGS
        )
        assert distributed.to_json() == serial.to_json()
        assert distributed.stats.executor == "broker"
        # The stop sentinel is dropped even on the happy path so late
        # workers exit instead of waiting forever.
        assert (tmp_path / "sweep" / "STOP").exists()

    def test_transport_options_are_passed_through(self, tmp_path):
        result = run_sweep(
            transport="broker",
            sweep_dir=tmp_path / "sweep",
            transport_options={"lease_ttl_s": 5.0, "max_attempts": 2},
            **SMALL_KWARGS,
        )
        assert result.stats.executor == "broker"

    def test_broker_requires_sweep_dir(self):
        with pytest.raises(ValueError, match="requires sweep_dir="):
            run_sweep(transport="broker", **SMALL_KWARGS)
        with pytest.raises(ValueError, match="requires sweep_dir="):
            BrokerTransport()

    def test_second_coordinator_fails_fast(self, tmp_path, serial_small):
        sweep_dir = tmp_path / "sweep"
        sweep_dir.mkdir()
        (sweep_dir / "coordinator.lock").write_text(f"{os.getpid()}\n")
        with pytest.raises(TransportError, match="live coordinator"):
            run_sweep(
                transport="broker", sweep_dir=sweep_dir, **SMALL_KWARGS
            )

    def test_cold_distributed_run_populates_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(
            transport="broker",
            sweep_dir=tmp_path / "sweep",
            cache_dir=cache_dir,
            **GRID_KWARGS,
        )
        assert cold.cache_misses == len(cold.results)
        # The coordinator persisted every outcome: a local re-run is all
        # cache hits and byte-identical.
        warm = run_sweep(
            transport="serial", cache_dir=cache_dir, **GRID_KWARGS
        )
        assert warm.cache_hits == len(warm.results)
        assert warm.cache_misses == 0

    def test_warm_distributed_run_matches_warm_serial(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(transport="serial", cache_dir=cache_dir, **GRID_KWARGS)
        warm_serial = run_sweep(
            transport="serial", cache_dir=cache_dir, **GRID_KWARGS
        )
        warm_broker = run_sweep(
            transport="broker",
            sweep_dir=tmp_path / "sweep",
            cache_dir=cache_dir,
            **GRID_KWARGS,
        )
        assert warm_broker.to_json() == warm_serial.to_json()
        assert warm_broker.cache_hits == len(warm_broker.results)


WORKER_SCRIPT = """
    import sys
    from repro.dist.worker import WorkerConfig, run_worker

    executed = run_worker(
        WorkerConfig(
            sweep_dir={sweep_dir!r},
            worker_id={worker_id!r},
            attach_timeout_s=120.0,
        )
    )
    print(f"executed {{executed}}")
"""

# A worker whose first shard execution SIGKILLs the whole process
# mid-run: run_worker resolves ``run_shard`` lazily at call time, so
# patching the sweep module is enough to detonate inside the lease.
VICTIM_SCRIPT = """
    import os
    import signal

    import repro.api.sweep as sweep_module

    def lethal_run_shard(shard, cache_dir=None):
        os.kill(os.getpid(), signal.SIGKILL)

    sweep_module.run_shard = lethal_run_shard

    from repro.dist.worker import WorkerConfig, run_worker

    run_worker(
        WorkerConfig(
            sweep_dir={sweep_dir!r},
            worker_id="victim",
            attach_timeout_s=120.0,
        )
    )
"""

# A healthy worker that waits for the victim's PID to die before
# attaching, so the victim deterministically claims (and loses) a shard.
SURVIVOR_SCRIPT = """
    import os
    import time

    victim_pid = {victim_pid}
    while True:
        try:
            os.kill(victim_pid, 0)
        except ProcessLookupError:
            break
        time.sleep(0.05)

    from repro.dist.worker import WorkerConfig, run_worker

    executed = run_worker(
        WorkerConfig(
            sweep_dir={sweep_dir!r},
            worker_id="survivor",
            attach_timeout_s=120.0,
        )
    )
    print(f"executed {{executed}}")
"""


class TestWorkerProcesses:
    def test_worker_subprocess_executes_all_shards(self, tmp_path):
        serial = run_sweep(transport="serial", shards=3, **GRID_KWARGS)
        sweep_dir = tmp_path / "sweep"
        worker = _spawn(
            WORKER_SCRIPT.format(sweep_dir=str(sweep_dir), worker_id="w0")
        )
        try:
            distributed = run_sweep(
                transport="broker",
                sweep_dir=sweep_dir,
                shards=3,
                transport_options={"coordinator_executes": False},
                **GRID_KWARGS,
            )
        finally:
            stdout, stderr = worker.communicate(timeout=120)
        assert worker.returncode == 0, stderr
        assert stdout.strip() == "executed 3"
        assert distributed.to_json() == serial.to_json()

    def test_sigkilled_worker_is_requeued_and_result_is_byte_identical(
        self, tmp_path
    ):
        serial = run_sweep(transport="serial", shards=3, **GRID_KWARGS)
        sweep_dir = tmp_path / "sweep"
        victim = _spawn(VICTIM_SCRIPT.format(sweep_dir=str(sweep_dir)))
        _reap_in_background(victim)
        survivor = _spawn(
            SURVIVOR_SCRIPT.format(
                sweep_dir=str(sweep_dir), victim_pid=victim.pid
            )
        )
        try:
            with pytest.warns(RuntimeWarning, match="lost its worker"):
                distributed = run_sweep(
                    transport="broker",
                    sweep_dir=sweep_dir,
                    shards=3,
                    transport_options={
                        # Pure coordination: the workers do all the work,
                        # and the PID probe (not the generous TTL) is what
                        # must detect the SIGKILL.
                        "coordinator_executes": False,
                        "lease_ttl_s": 300.0,
                    },
                    **GRID_KWARGS,
                )
        finally:
            victim.communicate(timeout=120)
            survivor_out, survivor_err = survivor.communicate(timeout=120)
        assert victim.returncode == -signal.SIGKILL
        assert survivor.returncode == 0, survivor_err
        assert survivor_out.strip() == "executed 3"
        assert distributed.to_json() == serial.to_json()

    def test_retry_budget_exhaustion_names_the_shard(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        victim = _spawn(VICTIM_SCRIPT.format(sweep_dir=str(sweep_dir)))
        _reap_in_background(victim)
        try:
            with pytest.warns(RuntimeWarning, match="lost its worker"):
                with pytest.raises(
                    WorkerLostError, match="was lost 1 times"
                ) as excinfo:
                    run_sweep(
                        transport="broker",
                        sweep_dir=sweep_dir,
                        shards=3,
                        transport_options={
                            "coordinator_executes": False,
                            "max_attempts": 1,
                        },
                        **GRID_KWARGS,
                    )
        finally:
            victim.communicate(timeout=120)
        assert victim.returncode == -signal.SIGKILL
        assert excinfo.value.attempts == 1
        assert f"shard {excinfo.value.shard_index}" in str(excinfo.value)
        assert excinfo.value.point_indices  # the shard's grid points
        # Even a failed sweep drops the stop sentinel so workers exit.
        assert (sweep_dir / "STOP").exists()


class TestWorkerLoop:
    def test_worker_attach_timeout_raises_manifest_error(self, tmp_path):
        with pytest.raises(SweepManifestError, match="no sweep manifest"):
            run_worker(
                WorkerConfig(sweep_dir=tmp_path, attach_timeout_s=0.0)
            )

    def test_worker_exits_once_all_results_exist(self, tmp_path, serial_small):
        broker = DirectoryBroker(tmp_path)
        grid = build_grid(**SMALL_KWARGS)
        shard = SweepShard(index=0, indices=(0,), points=(grid[0],))
        broker.publish([shard], "sweep-1")
        outcomes = [(0, serial_small.results[0], False)]
        broker.write_outcomes(0, outcomes, "other", "sweep-1")
        assert run_worker(WorkerConfig(sweep_dir=tmp_path)) == 0

    def test_worker_executes_published_shard(self, tmp_path, serial_small):
        broker = DirectoryBroker(tmp_path)
        grid = build_grid(**SMALL_KWARGS)
        shard = SweepShard(index=0, indices=(0,), points=(grid[0],))
        broker.publish([shard], "sweep-1")
        seen = []
        executed = run_worker(
            WorkerConfig(
                sweep_dir=tmp_path,
                max_shards=1,
                on_shard=lambda s, outcomes: seen.append((s.index, outcomes)),
            )
        )
        assert executed == 1
        assert seen[0][0] == 0
        kind, payload = broker.read_result(0, "sweep-1")
        assert kind == "ok"
        assert [index for index, _, _ in payload] == [0]
        assert payload[0][1].to_dict() == serial_small.results[0].to_dict()
        assert broker.lease_info(0) is None  # lease released
