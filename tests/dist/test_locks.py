"""Tests for the shared PID-sentinel lock (``repro.dist.locks``).

The journal- and store-specific acquire/reclaim/release behaviours stay
pinned by their own suites (``tests/api/test_sweep_service.py``,
``tests/store/test_packed_store.py``), which now run against this shared
implementation; this module pins the generic contract -- exclusivity,
stale-holder reclaim, caller-supplied error types and message templates,
and the guarded release that never unlinks someone else's sentinel.
"""

import os
import subprocess
import sys

import pytest

from repro.dist.locks import PidFileLock, PidFileLockError, pid_alive


def _dead_pid() -> int:
    """A PID that is guaranteed dead: a subprocess we already reaped."""
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(probe.stdout.strip())


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_reaped_pid_is_dead(self):
        assert not pid_alive(_dead_pid())

    def test_nonpositive_pids_are_never_alive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestPidFileLock:
    def test_acquire_is_exclusive_and_records_pid(self, tmp_path):
        path = tmp_path / "x.lock"
        first = PidFileLock(path)
        first.acquire()
        assert first.locked
        assert first.holder() == os.getpid()
        second = PidFileLock(path)
        with pytest.raises(PidFileLockError, match="locked by a running"):
            second.acquire()
        first.release()
        assert not path.exists()
        second.acquire()  # free again
        second.release()

    def test_custom_error_type_and_message_template(self, tmp_path):
        class MyLocked(RuntimeError):
            pass

        path = tmp_path / "y.lock"
        holder = PidFileLock(path)
        holder.acquire()
        try:
            contender = PidFileLock(
                path,
                error=MyLocked,
                contended="busy: {path} held by {holder}",
            )
            with pytest.raises(MyLocked) as excinfo:
                contender.acquire()
            assert str(excinfo.value) == (
                f"busy: {path} held by {os.getpid()}"
            )
        finally:
            holder.release()

    def test_stale_lock_from_dead_process_is_reclaimed(self, tmp_path):
        path = tmp_path / "z.lock"
        dead = _dead_pid()
        path.write_text(f"{dead}\n", encoding="utf-8")
        lock = PidFileLock(path, stale="stale {path} (pid {holder})")
        with pytest.warns(RuntimeWarning, match="stale"):
            lock.acquire()
        assert lock.holder() == os.getpid()
        lock.release()

    def test_unreadable_holder_counts_as_stale(self, tmp_path):
        path = tmp_path / "junk.lock"
        path.write_text("not-a-pid\n", encoding="utf-8")
        lock = PidFileLock(path)
        with pytest.warns(RuntimeWarning, match="reclaiming stale"):
            lock.acquire()
        lock.release()

    def test_release_is_guarded_and_idempotent(self, tmp_path):
        path = tmp_path / "g.lock"
        owner = PidFileLock(path)
        owner.acquire()
        bystander = PidFileLock(path)
        # A lock this instance never acquired must not unlink the
        # owner's sentinel.
        bystander.release()
        assert path.exists()
        owner.release()
        owner.release()  # idempotent
        assert not path.exists()

    def test_context_manager(self, tmp_path):
        path = tmp_path / "cm.lock"
        with PidFileLock(path) as lock:
            assert lock.locked and path.exists()
        assert not path.exists()

    def test_exhausted_when_lock_keeps_reappearing(self, tmp_path, monkeypatch):
        path = tmp_path / "racy.lock"
        path.write_text(f"{_dead_pid()}\n", encoding="utf-8")
        # A racer keeps re-creating the stale sentinel: simulate by making
        # the reclaim unlink a no-op, so every retry loses again.
        monkeypatch.setattr(
            "repro.dist.locks.os.unlink", lambda _path: None
        )
        lock = PidFileLock(path, exhausted="gave up on {path}")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(PidFileLockError, match="gave up on"):
                lock.acquire()
