"""Tests for the :class:`ShardTransport` protocol, its registry, and the
``executor=`` deprecation shim in :func:`repro.api.run_sweep`.

Byte-identity of the local transports against the historical executors is
pinned here too: a sweep run through ``transport="serial"`` must serialise
to exactly the same JSON as one run through the (deprecated)
``executor="serial"`` knob, and ``stats.executor`` must keep carrying the
backend name the old field always carried.
"""

import pytest

from repro.api import run_sweep
from repro.api.sweep import DEFAULT_TRANSPORT, SweepShard
from repro.dist.transport import (
    SerialTransport,
    ShardTransport,
    ThreadTransport,
    TransportSpec,
    WorkerLostError,
    get_transport,
    list_transports,
    register_transport,
    transport_names,
    unregister_transport,
)

GRID_KWARGS = dict(experiments=("table4",), models=("alexnet",))


def _shard(index, *, indices=(0,)):
    return SweepShard(index=index, indices=tuple(indices), points=())


class TestLeaseLifecycle:
    def test_lease_complete_roundtrip(self):
        transport = ShardTransport()
        transport.submit([_shard(0), _shard(1, indices=(1,))])
        assert transport.outstanding() == 2
        lease = transport.lease(worker="w0")
        assert lease.shard.index == 0
        assert lease.attempt == 1
        assert transport.attempts(0) == 1
        assert transport.complete(lease, [(0, "r", False)])
        assert transport.outstanding() == 1

    def test_duplicate_completion_is_idempotent(self):
        transport = ShardTransport()
        transport.submit([_shard(0)])
        first = transport.lease(worker="w0")
        assert transport.complete(first, [(0, "r", False)]) is True
        # A worker wrongly presumed dead finishes anyway: dropped.
        assert transport.complete(first, [(0, "r", False)]) is False

    def test_requeue_returns_shard_to_queue(self):
        transport = ShardTransport(max_attempts=3)
        transport.submit([_shard(7, indices=(3, 4))])
        lease = transport.lease(worker="doomed")
        transport.requeue(lease)
        assert transport.attempts(7) == 1
        retry = transport.lease(worker="second")
        assert retry.shard.index == 7
        assert retry.attempt == 2

    def test_requeue_after_completion_is_a_noop(self):
        transport = ShardTransport(max_attempts=1)
        transport.submit([_shard(0)])
        lease = transport.lease(worker="w0")
        transport.complete(lease, [(0, "r", False)])
        # Even at the retry cap, a completed shard never raises.
        transport.requeue(lease)
        assert transport.outstanding() == 0

    def test_retry_budget_surfaces_typed_error_naming_shard(self):
        transport = ShardTransport(max_attempts=2)
        transport.submit([_shard(5, indices=(10, 11))])
        transport.requeue(transport.lease(worker="w0"))
        lease = transport.lease(worker="w1")
        with pytest.raises(WorkerLostError, match="shard 5 was lost 2 times") as excinfo:
            transport.requeue(lease)
        assert excinfo.value.shard_index == 5
        assert excinfo.value.attempts == 2
        assert excinfo.value.point_indices == (10, 11)
        assert "max_attempts=2" in str(excinfo.value)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ShardTransport(max_attempts=0)

    def test_heartbeat_refreshes_stamp(self):
        transport = ShardTransport()
        transport.submit([_shard(0)])
        lease = transport.lease()
        before = lease.heartbeat_at
        transport.heartbeat(lease)
        assert lease.heartbeat_at >= before


class TestRegistry:
    def test_builtin_transports_are_registered(self):
        assert transport_names() == ("broker", "process", "serial", "thread")
        assert DEFAULT_TRANSPORT == "thread"
        broker = get_transport("broker")
        assert broker.distributed
        for local in ("serial", "thread", "process"):
            assert not get_transport(local).distributed

    def test_unknown_transport_lists_registered_names(self):
        with pytest.raises(KeyError, match="unknown transport 'mpi'") as excinfo:
            get_transport("mpi")
        assert "broker" in str(excinfo.value)

    def test_register_and_unregister(self):
        spec = TransportSpec(
            name="turtle", title="slow but steady", factory=SerialTransport
        )
        register_transport(spec)
        try:
            assert get_transport("turtle") is spec
            assert "turtle" in transport_names()
            with pytest.raises(ValueError, match="already registered"):
                register_transport(spec)
            register_transport(spec, replace=True)
        finally:
            unregister_transport("turtle")
        assert "turtle" not in transport_names()
        unregister_transport("turtle")  # missing names are ignored

    def test_list_transports_is_sorted(self):
        names = [spec.name for spec in list_transports()]
        assert names == sorted(names)

    def test_create_names_transport_on_bad_options(self):
        spec = get_transport("serial")
        with pytest.raises(
            ValueError, match="invalid options for transport 'serial'"
        ):
            spec.create(lease_ttl_s=5.0)

    def test_create_passes_valid_options(self):
        transport = get_transport("thread").create(max_attempts=7)
        assert isinstance(transport, ThreadTransport)
        assert transport.max_attempts == 7


class TestRunSweepTransportKnob:
    def test_stats_carry_transport_name(self):
        result = run_sweep(transport="serial", **GRID_KWARGS)
        assert result.stats.executor == "serial"

    def test_transport_serial_matches_deprecated_executor(self):
        via_transport = run_sweep(transport="serial", **GRID_KWARGS)
        with pytest.warns(DeprecationWarning, match="executor="):
            via_executor = run_sweep(executor="serial", **GRID_KWARGS)
        assert via_transport.to_json() == via_executor.to_json()

    def test_executor_alias_still_validates_first(self):
        # The historical unknown-executor message stays byte-compatible.
        with pytest.raises(ValueError, match="unknown executor 'mpi'"):
            run_sweep(executor="mpi", **GRID_KWARGS)

    def test_conflicting_executor_and_transport(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(
                ValueError, match="conflicting execution backends"
            ):
                run_sweep(
                    executor="serial", transport="thread", **GRID_KWARGS
                )

    def test_matching_executor_and_transport_is_allowed(self):
        with pytest.warns(DeprecationWarning):
            result = run_sweep(
                executor="serial", transport="serial", **GRID_KWARGS
            )
        assert result.stats.executor == "serial"

    def test_unknown_transport_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown transport 'osmosis'"):
            run_sweep(transport="osmosis", **GRID_KWARGS)

    def test_local_transport_rejects_sweep_dir(self, tmp_path):
        with pytest.raises(
            ValueError, match="invalid options for transport 'serial'"
        ):
            run_sweep(
                transport="serial",
                sweep_dir=tmp_path / "sweep",
                **GRID_KWARGS,
            )

    def test_custom_registered_transport_is_picked_up(self):
        class TurtleTransport(SerialTransport):
            name = "turtle"

        register_transport(
            TransportSpec(
                name="turtle",
                title="slow but steady",
                factory=TurtleTransport,
            )
        )
        try:
            custom = run_sweep(transport="turtle", **GRID_KWARGS)
        finally:
            unregister_transport("turtle")
        assert custom.stats.executor == "turtle"
        serial = run_sweep(transport="serial", **GRID_KWARGS)
        assert custom.to_json() == serial.to_json()
