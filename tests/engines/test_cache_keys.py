"""Golden-value pinning of :meth:`SweepPoint.cache_key`.

The engine-registry refactor rerouted the cache key's engine component
through :attr:`repro.sim.engines.EngineSpec.cache_token`.  The token
defaults to the engine name, so every historical on-disk sweep/serve cache
entry must remain byte-for-byte addressable.  This suite pins the keys of a
fixed (experiment, config, seed, engine, params) matrix to SHA-256 digests
captured on the pre-registry code (v1.5.0); a mismatch means somebody
rotated every user's cache by accident.

The package version is part of the key payload *on purpose* (a release
whose simulator produces different numbers must invalidate caches), so the
golden rows monkeypatch ``repro.__version__`` back to the capture version
-- the table stays valid across future releases while still catching
accidental payload/serialisation changes.
"""

import pytest

import repro
from repro.api.sweep import SweepPoint
from repro.sim.engines import get_engine

#: Captured on v1.5.0, immediately before the engine-registry refactor:
#: ((experiment, config, seed, engine, params_json), sha256 hex digest).
GOLDEN_VERSION = "1.5.0"
GOLDEN_KEYS = [
    (('fig7', 'paper-28nm', 0, 'vectorized',
      '{"models": ["alexnet"]}'),
     '536a076dc614d0fbfac45371e94b3620cbd3bab192cf8cc9637f31a395470f33'),
    (('fig7', 'paper-28nm', 0, 'scalar',
      '{"models": ["alexnet"]}'),
     'b036834abfe1625097dc2148ef3bff26db2cb2ca24c671526b4a2c8192326e6f'),
    (('fig7', 'paper-28nm', 7, 'vectorized',
      '{"models": ["alexnet"]}'),
     '75c7170ff59f0f35c2d4fe14459b6d21d4f23173c781ec0b67c90215acd3a208'),
    (('fig7', 'paper-28nm', 7, 'scalar',
      '{"models": ["alexnet"]}'),
     '6e5e00f8d46da0486af5da6426c7dba48d29b815cf68468e86ced79a776e1bb8'),
    (('fig7', 'dense-baseline', 0, 'vectorized',
      '{"models": ["alexnet"]}'),
     '06068ece60e16e819d63eb747dba2c816edb313229d29b7c04471afac137ab86'),
    (('fig7', 'dense-baseline', 0, 'scalar',
      '{"models": ["alexnet"]}'),
     'c7d7798af3451220a4e208296d6a845ae3b662254194b63a5119981e0b4a8860'),
    (('fig7', 'dense-baseline', 7, 'vectorized',
      '{"models": ["alexnet"]}'),
     '0976e3ec51d55c5eeeef0d3a9802c95a8650af25d86d6cb315fc45733b4b6eec'),
    (('fig7', 'dense-baseline', 7, 'scalar',
      '{"models": ["alexnet"]}'),
     '22e093408b1ced3ebef49e3d3859c2ecb5d8818353f8099f372f651ee526e044'),
    (('fig7', 'paper-28nm', 0, 'vectorized',
      '{"models": ["resnet18"]}'),
     'e8be3cb1a53347ab5070388ad46c89276841d37290de829fee661b36ac553bcd'),
    (('fig7', 'paper-28nm', 0, 'scalar',
      '{"models": ["resnet18"]}'),
     '220e15dfd7b74b082e36add34296116c39b92e1156efc0a9eb65bbfc29b91730'),
    (('fig7', 'paper-28nm', 7, 'vectorized',
      '{"models": ["resnet18"]}'),
     'd5aae06b23e370081e95b76c379b3fb54506f722d3c4564a4f00c807db47ba93'),
    (('fig7', 'paper-28nm', 7, 'scalar',
      '{"models": ["resnet18"]}'),
     '9f3bf6bda1acae86ecfc0002fe09d434eff720d5a2d7cf9cf55a0eb088d8d7d5'),
    (('fig7', 'dense-baseline', 0, 'vectorized',
      '{"models": ["resnet18"]}'),
     '38cf2d69d0255769c50b4af639cb5bdf5b3c6dcd04e65e931c64da3ad0fd7bb3'),
    (('fig7', 'dense-baseline', 0, 'scalar',
      '{"models": ["resnet18"]}'),
     'fe3c05027c1c186ca020d00292e507beadef06692f100e5c2dccd095ffa7be65'),
    (('fig7', 'dense-baseline', 7, 'vectorized',
      '{"models": ["resnet18"]}'),
     '27cb8e1036cd527f50730716445fb5802061e615f485ba5e69beea808bbbcebb'),
    (('fig7', 'dense-baseline', 7, 'scalar',
      '{"models": ["resnet18"]}'),
     '0d7b5d469e13c93e7a8d1f7af5c220e5b569f5c9a9b88a517de2a0df41cf915c'),
    (('fig2a', 'paper-28nm', 0, 'vectorized',
      '{"models": ["vgg19"]}'),
     '61c716acb9f13c33cef2a3afd0d680a448c15d50ca3f379649f2ab2d48fb6bc8'),
    (('fig2a', 'paper-28nm', 0, 'scalar',
      '{"models": ["vgg19"]}'),
     'a58518bdaf2f6b75b4022f7097c8970d7cb9718d2f90291e5aa70658869560d1'),
    (('fig2a', 'paper-28nm', 7, 'vectorized',
      '{"models": ["vgg19"]}'),
     'ab691890791833a19377739b843362b875125e1610def24d821f03b4ae68cf3d'),
    (('fig2a', 'paper-28nm', 7, 'scalar',
      '{"models": ["vgg19"]}'),
     '8e52758f234edcb7cc463a5610d4226a9550291164e9b50bb2c7bd9e17e79828'),
    (('fig2a', 'dense-baseline', 0, 'vectorized',
      '{"models": ["vgg19"]}'),
     'e518d39f5cccf9d0dac3af448660f08ea6291fe4e6b54762c213e6b6cf6f8197'),
    (('fig2a', 'dense-baseline', 0, 'scalar',
      '{"models": ["vgg19"]}'),
     '292a1fc0f3764df180530ef16d31d6dbbda40d3702d4fbb85e52afcba3bdea62'),
    (('fig2a', 'dense-baseline', 7, 'vectorized',
      '{"models": ["vgg19"]}'),
     '389874a4c5c5dea5cecbfdb36aad4975c4b31cc1bfc2d5686225bea05c6a685d'),
    (('fig2a', 'dense-baseline', 7, 'scalar',
      '{"models": ["vgg19"]}'),
     '262d28bea151e8ae58cb05b90a7958ac08eceb7140d59eae134cca3411c8c773'),
    (('fig2b', 'paper-28nm', 0, 'vectorized',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     '594779d259f28743cbe83d21bb1c9b2bfa7121f64c5089f99d95e04fc40e0e2a'),
    (('fig2b', 'paper-28nm', 0, 'scalar',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     '5a6b1347a6b665daf169cec1d57c92c05e5ce386fcb1982180c75ffa4788fe6d'),
    (('fig2b', 'paper-28nm', 7, 'vectorized',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     'af555be871297555434855f9c44cabf21f4aa2b702ef4cf301228fd28e5e50d4'),
    (('fig2b', 'paper-28nm', 7, 'scalar',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     '4791aff9af244f92942a172b17864ca6c6116e0ded9b322f923648e168b063d6'),
    (('fig2b', 'dense-baseline', 0, 'vectorized',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     '5eabe787586b4d0cdc1cb3f59aa73d39322ac61c242990152b244963d8ab0f7e'),
    (('fig2b', 'dense-baseline', 0, 'scalar',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     'f2877571ac42ad903375f7c248b4e2d5862b6dbe6e48d0e0ae79bf9981097b50'),
    (('fig2b', 'dense-baseline', 7, 'vectorized',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     '334dff66061ac0cadea6813ba08106fd132b0b6cb615cb573019bc9ff4a8ca36'),
    (('fig2b', 'dense-baseline', 7, 'scalar',
      '{"group_sizes": [1, 8, 16], "models": ["mobilenetv2"]}'),
     'dca2aba9d1a95a4fac033636499334392369b70159513271dd89fef6b698bb97'),
    (('table3', 'paper-28nm', 0, 'vectorized',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '21a03c1d2cf4692a9fb27101c1e304a4439301cd7cf08e30362aef73f41166ee'),
    (('table3', 'paper-28nm', 0, 'scalar',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '914788d244db16ca3828bff3360f65e2c927c5cf64aef49acd1044194a2eff99'),
    (('table3', 'paper-28nm', 7, 'vectorized',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '153c999808a78bd253987c9874f3420b9c0ea0507cc9af07f6cdacdd22a7ca5f'),
    (('table3', 'paper-28nm', 7, 'scalar',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '54439713da2c93fd90f3f5a838cc54a35bc53e0213d46ce07fd1b5d33d7639f7'),
    (('table3', 'dense-baseline', 0, 'vectorized',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     'fbfccce28e24e6a79eaf5065e96a1c18213008d3d8c89b57eede3c2125025cbc'),
    (('table3', 'dense-baseline', 0, 'scalar',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '50ce5c1979a2b8621289dc544f411ffb285b67e359bdc37d21f08769ce7cd6f4'),
    (('table3', 'dense-baseline', 7, 'vectorized',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '604565efaefc19495c7b3bf613d851428a8358d5ffc7cd3ac41eeb418a8db247'),
    (('table3', 'dense-baseline', 7, 'scalar',
      '{"models": ["alexnet", "vgg19", "resnet18", "mobilenetv2", "efficientnetb0"]}'),
     '585d65b90c88b8b297e014bd816897d18a4a75a00e376df399a287745a1188e6'),
    (('table4', 'paper-28nm', 0, 'vectorized',
      '{}'),
     'bb0d936d0e2108d4433dc3501ce107357396f9d2c048a84339da2e55d69870dc'),
    (('table4', 'paper-28nm', 0, 'scalar',
      '{}'),
     'c325697f66e92f73e010316df7a79801b0a0f9666d7df253730cd662f51924a0'),
    (('table4', 'paper-28nm', 7, 'vectorized',
      '{}'),
     '4dc8b7aee7082738e22b9e55fd02991edb72ee7edfeee31e5443089887c4364a'),
    (('table4', 'paper-28nm', 7, 'scalar',
      '{}'),
     'b2c777a591cead090ef0c330328bc40415e43fb606f5717ffc0dd738e3fc453d'),
    (('table4', 'dense-baseline', 0, 'vectorized',
      '{}'),
     'e71dffc75ab8ce5d0cec5722e57bad253f4487f437d973a0962c36eab10c2fdd'),
    (('table4', 'dense-baseline', 0, 'scalar',
      '{}'),
     '35a0fbabf41fb4db5821e80f6fa8fb85fd2a7b9c1a869d210814274bb0da65ca'),
    (('table4', 'dense-baseline', 7, 'vectorized',
      '{}'),
     'b60b7bb7f87ecc26f0feca102c63cf232b17c5768ebecc25b3e0817b8ebef2db'),
    (('table4', 'dense-baseline', 7, 'scalar',
      '{}'),
     '74e582ca60241b65683eda1917710898440822ab7ea4a4f1bfbd11796a515a00'),
    (('program', 'paper-28nm', 0, 'vectorized',
      '{"models": ["vit_tiny"]}'),
     'b5f1af63a271ac7a5bce6345f2a19bf37e1cf44f55b03510ebfcc157aa06d79a'),
    (('program', 'paper-28nm', 0, 'scalar',
      '{"models": ["vit_tiny"]}'),
     '6565cea1301590357cd0be6270fde34d1d6fd5bc9e2e339e99de659918837369'),
    (('program', 'paper-28nm', 7, 'vectorized',
      '{"models": ["vit_tiny"]}'),
     '5564b7032d11d5bf7f11d25ea916773d2173e724ec7f8f682b1eef42d52c809e'),
    (('program', 'paper-28nm', 7, 'scalar',
      '{"models": ["vit_tiny"]}'),
     '8980e4924f420e1a40d1751a3160f35b2353d554d7ec1eda43e8201f6994bf06'),
    (('program', 'dense-baseline', 0, 'vectorized',
      '{"models": ["vit_tiny"]}'),
     '65485f8741723a2d0750fcc1784a660a4532c9c25be0ec2804c97acd3f063aeb'),
    (('program', 'dense-baseline', 0, 'scalar',
      '{"models": ["vit_tiny"]}'),
     '54bb3228e975eeb2a0ebc175a69bcf73a57e4939b0c01c4cc5009e9bb15119b9'),
    (('program', 'dense-baseline', 7, 'vectorized',
      '{"models": ["vit_tiny"]}'),
     'a4dd4ff798b67865445891414c84ea1a1e889560960ad00c79ac583372c64177'),
    (('program', 'dense-baseline', 7, 'scalar',
      '{"models": ["vit_tiny"]}'),
     'b467a11f859cd9b3266488121535b0b953a64a925fb2995e493d01bd20cb2a6e'),
    (('graph', 'paper-28nm', 0, 'vectorized',
      '{"models": ["transformer_tiny"]}'),
     '0afed18f4592b69b410b803df42b3090a4120185c59e7d7ae225162667246e4e'),
    (('graph', 'paper-28nm', 0, 'scalar',
      '{"models": ["transformer_tiny"]}'),
     '15eebd50433a60a3e1aac0f7564d8117376e038647be91374b6e07784d80713e'),
    (('graph', 'paper-28nm', 7, 'vectorized',
      '{"models": ["transformer_tiny"]}'),
     '50cf6a311ba7547f2fdd99363777eab6413bcaba63579914e77c8009e6ba592c'),
    (('graph', 'paper-28nm', 7, 'scalar',
      '{"models": ["transformer_tiny"]}'),
     '110426985dc8d43933ce1145bb87de9df5a13a92c56dd1d57b35c830a2a1d0f7'),
    (('graph', 'dense-baseline', 0, 'vectorized',
      '{"models": ["transformer_tiny"]}'),
     '0f32bb66384136c9cd767a68d6523818b841b30e830c75fcbb5e82826489f0dc'),
    (('graph', 'dense-baseline', 0, 'scalar',
      '{"models": ["transformer_tiny"]}'),
     '3536d51b35673b3dfbcdebb2770c7464d6ad62c488639c0cd8fdc179816c6fe1'),
    (('graph', 'dense-baseline', 7, 'vectorized',
      '{"models": ["transformer_tiny"]}'),
     'f0fead7eee75c2cab914cc5b5f6ea03d13a75552ba9897d71b1f7b83af137780'),
    (('graph', 'dense-baseline', 7, 'scalar',
      '{"models": ["transformer_tiny"]}'),
     '1703bbc2eb3a99f94deace08d11d5fb91dd105e6a0995b959c35ad89c7e2b5c3'),
]


@pytest.fixture()
def golden_version(monkeypatch):
    """Pin the package version to the golden capture release."""
    monkeypatch.setattr(repro, "__version__", GOLDEN_VERSION)


class TestGoldenCacheKeys:
    def test_matrix_is_nontrivial(self):
        assert len(GOLDEN_KEYS) == 64
        engines = {key[3] for key, _ in GOLDEN_KEYS}
        assert engines == {"scalar", "vectorized"}
        experiments = {key[0] for key, _ in GOLDEN_KEYS}
        assert len(experiments) >= 7

    @pytest.mark.parametrize(
        "case, expected",
        GOLDEN_KEYS,
        ids=["{}-{}-s{}-{}".format(*key[:4]) for key, _ in GOLDEN_KEYS],
    )
    def test_cache_key_is_byte_stable(self, golden_version, case, expected):
        experiment, config, seed, engine, params_json = case
        import json

        point = SweepPoint(
            experiment=experiment,
            config=config,
            seed=seed,
            engine=engine,
            params=json.loads(params_json),
        )
        assert point.cache_key() == expected

    def test_cache_token_defaults_to_name(self):
        for name in ("scalar", "vectorized", "trace"):
            assert get_engine(name).cache_token == name

    def test_batched_grid_keys_match_goldens(self, golden_version):
        """The spliced batch canonicaliser reproduces every golden byte.

        :func:`repro.api.sweep.cache_keys_for_grid` assembles the canonical
        payload by string splicing (memoizing the per-config digest and
        per-engine token); this must be indistinguishable from the per-point
        ``json.dumps(payload, sort_keys=True)`` the goldens were captured
        from.
        """
        import json

        from repro.api.sweep import cache_keys_for_grid

        points = [
            SweepPoint(
                experiment=experiment,
                config=config,
                seed=seed,
                engine=engine,
                params=json.loads(params_json),
            )
            for (experiment, config, seed, engine, params_json), _ in GOLDEN_KEYS
        ]
        batched = cache_keys_for_grid(points)
        assert list(batched) == [expected for _, expected in GOLDEN_KEYS]
        # The batch memoized each key on its point: cache_key() is now a
        # lookup and still returns the same bytes.
        assert [p.cache_key() for p in points] == list(batched)

    def test_cache_key_is_memoized_on_the_point(self, golden_version):
        point = SweepPoint("fig7", params={"models": ["alexnet"]})
        assert "_cache_key" not in point.__dict__
        first = point.cache_key()
        assert point.__dict__["_cache_key"] == first
        assert point.cache_key() is first

    def test_custom_cache_token_rotates_only_its_own_keys(
        self, golden_version
    ):
        """A backend bumping its token must not disturb other engines."""
        from repro.sim.engines import EngineSpec, temporary_engine

        def fail(*args, **kwargs):  # pragma: no cover - never dispatched
            raise AssertionError("not executed")

        with temporary_engine(
            EngineSpec(
                name="goldentest",
                title="cache-token rotation probe",
                cache_token="goldentest-v2",
                run_jobs=fail,
                evaluate=fail,
            )
        ):
            rotated = SweepPoint("fig7", engine="goldentest").cache_key()
            stock = SweepPoint("fig7").cache_key()
        assert rotated != stock
