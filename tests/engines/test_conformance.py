"""The auto-applied cross-engine conformance suite.

Every engine in the registry is parametrized through the same contract:
bitwise equality with the scalar reference for analytical engines,
:data:`~repro.sim.trace.TRACE_TOLERANCE` closeness for trace-class ones --
across the seven stock workload graphs, a matrix of hardware presets and
every sparsity variant the engine supports, plus seeded random
:mod:`repro.workloads.fuzz` graphs (a smoke subset always; the full
100-seed corpus behind the ``fuzz`` marker, see ``docs/testing.md``).

Registering a new engine via :func:`repro.sim.engines.register_engine`
automatically enrolls it here -- the parametrization reads the live
registry at collection time.
"""

import pytest

from repro.api.configs import get_config
from repro.sim.engines import EngineSpec, list_engines, temporary_engine
from repro.sim.engines.conformance import (
    REFERENCE_ENGINE,
    ConformanceError,
    assert_conformance,
    conformance_mismatches,
    reference_outcome,
    verify_engine,
)
from repro.workloads.fuzz import fuzz_workload
from repro.workloads.models import get_workload, list_workloads
from repro.workloads.profiles import profile_model

STOCK_WORKLOADS = tuple(list_workloads(family=None))
PRESETS = ("paper-28nm", "dense-baseline")
#: Fuzz seeds exercised on every tier-1 run (the smoke subset).
SMOKE_SEEDS = tuple(range(8))
#: The full pinned corpus (>= 100 seeds), selected with ``-m fuzz``.
CORPUS_SEEDS = tuple(range(100))


def engine_params():
    """One pytest param per registered engine, id'd by name."""
    return [pytest.param(spec, id=spec.name) for spec in list_engines()]


@pytest.fixture(scope="module")
def stock_profiles():
    """Sparsity profiles of all seven stock workload graphs."""
    return {
        name: profile_model(get_workload(name), seed=0)
        for name in STOCK_WORKLOADS
    }


@pytest.fixture(scope="module")
def reference_cache():
    """Memoized scalar-reference outcomes keyed by (workload, preset,
    variant) so the seven-workload matrix prices the reference once."""
    cache = {}

    def lookup(name, profile, preset, variant):
        key = (name, preset, variant)
        if key not in cache:
            cache[key] = reference_outcome(
                profile, get_config(preset), variant
            )
        return cache[key]

    return lookup


class TestStockWorkloadConformance:
    def test_matrix_is_nontrivial(self):
        assert len(STOCK_WORKLOADS) == 7
        assert len(list_engines()) >= 3

    @pytest.mark.parametrize("engine", engine_params())
    @pytest.mark.parametrize("workload", STOCK_WORKLOADS)
    def test_engine_conforms_on_stock_graphs(
        self, engine, workload, stock_profiles, reference_cache
    ):
        """presets x supported variants, bitwise (or trace-tolerance)."""
        profile = stock_profiles[workload]
        checked = 0
        for preset in PRESETS:
            config = get_config(preset)
            for variant in engine.variants:
                reference = reference_cache(
                    workload, profile, preset, variant
                )
                assert_conformance(
                    engine,
                    profile,
                    config,
                    variant,
                    reference=reference,
                    case=f"{workload}/{preset}/{variant}",
                )
                checked += 1
        assert checked == len(PRESETS) * len(engine.variants)

    def test_verify_engine_counts_the_matrix(self, stock_profiles):
        profiles = [stock_profiles["alexnet"], stock_profiles["vit_tiny"]]
        spec = next(s for s in list_engines() if s.name == "vectorized")
        checked = verify_engine(
            spec, profiles, [get_config("paper-28nm")]
        )
        assert checked == len(profiles) * len(spec.variants)


class TestFuzzConformance:
    @pytest.mark.parametrize("engine", engine_params())
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_engine_conforms_on_fuzz_smoke(self, engine, seed):
        """The pinned smoke subset of the fuzz corpus (every run)."""
        if engine.name == REFERENCE_ENGINE:
            pytest.skip("the reference engine trivially conforms")
        profile = profile_model(fuzz_workload(seed), seed=0)
        config = get_config("paper-28nm")
        for variant in engine.variants:
            assert_conformance(
                engine,
                profile,
                config,
                variant,
                case=f"fuzz-{seed}/{variant}",
            )

    @pytest.mark.fuzz
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_full_corpus_conformance(self, seed):
        """The full >=100-seed corpus (run with ``-m fuzz``)."""
        profile = profile_model(fuzz_workload(seed), seed=0)
        config = get_config("paper-28nm")
        for engine in list_engines():
            if engine.name == REFERENCE_ENGINE:
                continue
            for variant in engine.variants:
                assert_conformance(
                    engine,
                    profile,
                    config,
                    variant,
                    case=f"fuzz-{seed}/{variant}",
                )


class TestHarnessCatchesBrokenEngines:
    """The suite must fail engines that lie, not just pass ones that work."""

    def _broken_analytical_spec(self):
        def evaluate(profile, config, variant):
            from repro.sim.cycle_model import CycleModel
            from repro.sim.engines import EngineOutcome

            performance = CycleModel(config, engine="scalar").run_model(
                profile, variant
            )
            # Off-by-one on the aggregate: must be caught bitwise.
            return EngineOutcome(
                engine="broken",
                compute_cycles=performance.total_cycles + 1,
                performance=performance,
            )

        return EngineSpec(
            name="broken",
            title="deliberately wrong analytical engine",
            cycle_model=False,
            batch=False,
            evaluate=evaluate,
        )

    def _broken_trace_spec(self):
        def evaluate(profile, config, variant):
            from repro.sim.engines import EngineOutcome

            reference = reference_outcome(profile, config, variant)
            # 5% off: far outside TRACE_TOLERANCE.
            return EngineOutcome(
                engine="broken-trace",
                compute_cycles=reference.compute_cycles * 1.05,
            )

        return EngineSpec(
            name="broken-trace",
            title="deliberately wrong trace-class engine",
            cycle_model=False,
            batch=False,
            trace_class=True,
            evaluate=evaluate,
        )

    def test_analytical_divergence_is_caught(self, stock_profiles):
        profile = stock_profiles["alexnet"]
        config = get_config("paper-28nm")
        with temporary_engine(self._broken_analytical_spec()) as spec:
            with pytest.raises(ConformanceError, match="compute_cycles"):
                assert_conformance(spec, profile, config, "hybrid")

    def test_trace_class_divergence_is_caught(self, stock_profiles):
        profile = stock_profiles["alexnet"]
        config = get_config("paper-28nm")
        with temporary_engine(self._broken_trace_spec()) as spec:
            mismatches = conformance_mismatches(
                spec, profile, config, "hybrid"
            )
        assert len(mismatches) == 1
        assert "rel err" in mismatches[0]

    def test_aggregate_only_engine_must_declare_trace_class(
        self, stock_profiles
    ):
        def evaluate(profile, config, variant):
            from repro.sim.engines import EngineOutcome

            reference = reference_outcome(profile, config, variant)
            return EngineOutcome(
                engine="aggregate", compute_cycles=reference.compute_cycles
            )

        spec = EngineSpec(
            name="aggregate",
            title="aggregate-only engine without trace_class",
            cycle_model=False,
            batch=False,
            evaluate=evaluate,
        )
        profile = stock_profiles["alexnet"]
        with temporary_engine(spec):
            mismatches = conformance_mismatches(
                spec, profile, get_config("paper-28nm"), "hybrid"
            )
        assert mismatches and "trace_class" in mismatches[0]

    def test_unsupported_variant_is_rejected(self, stock_profiles):
        spec = next(s for s in list_engines() if s.name == "vectorized")
        with pytest.raises(ValueError, match="does not support variant"):
            conformance_mismatches(
                spec,
                stock_profiles["alexnet"],
                get_config("paper-28nm"),
                "no-such-variant",
            )
