"""Self-tests of the seeded random ModelGraph generator.

The conformance corpus is only as trustworthy as its generator: these pin
determinism (same seed, byte-identical graph), structural validity (every
graph passes ``ModelGraph`` validation and the compiler's fusion
precondition), the linearize round-trip and operator coverage -- plus
minimized regression fixtures for the gnarliest shapes the corpus grows
(self-concat, spatial collapse to 1x1, SIMD-only chains, stacked
softmaxes), each held to full cross-engine conformance.
"""

import pytest

from repro.api.configs import get_config
from repro.compiler.schedule import plan_elementwise_fusion
from repro.sim.engines import list_engines
from repro.sim.engines.conformance import (
    REFERENCE_ENGINE,
    assert_conformance,
)
from repro.workloads.fuzz import (
    DEFAULT_MAX_NODES,
    DEFAULT_MIN_NODES,
    fuzz_corpus,
    fuzz_graph,
    fuzz_workload,
    graph_fingerprint,
)
from repro.workloads.graph import GraphBuilder, OpKind
from repro.workloads.models import ModelWorkload
from repro.workloads.profiles import profile_model

SEEDS = tuple(range(40))


class TestDeterminism:
    @pytest.mark.parametrize("seed", (0, 1, 7, 13, 99, 12345))
    def test_same_seed_same_graph(self, seed):
        first = fuzz_graph(seed)
        second = fuzz_graph(seed)
        assert graph_fingerprint(first) == graph_fingerprint(second)
        assert [n.name for n in first] == [n.name for n in second]

    def test_different_seeds_differ(self):
        prints = {graph_fingerprint(fuzz_graph(seed)) for seed in SEEDS}
        # Collisions would mean the rng is not actually driving growth.
        assert len(prints) == len(SEEDS)

    def test_workload_knobs_are_deterministic(self):
        a = fuzz_workload(17)
        b = fuzz_workload(17)
        assert a.redundancy == b.redundancy
        assert a.activation_density == b.activation_density
        assert graph_fingerprint(a.graph) == graph_fingerprint(b.graph)

    def test_corpus_is_one_workload_per_seed(self):
        corpus = fuzz_corpus(range(5))
        assert [w.name for w in corpus] == [f"fuzz-{s}" for s in range(5)]


class TestValidity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_graphs_validate_and_fuse(self, seed):
        """Every graph builds (ModelGraph validation) and satisfies the
        fusion precondition (every SIMD node has a weighted anchor)."""
        graph = fuzz_graph(seed)
        decisions = plan_elementwise_fusion(graph)
        assert all(decision.anchor >= 0 for decision in decisions)
        assert len(decisions) == len(graph.simd_nodes())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_linearize_round_trip(self, seed):
        graph = fuzz_graph(seed)
        layers = graph.linearize()
        assert len(layers) == len(graph.weighted_nodes())
        workload = fuzz_workload(seed)
        assert workload.layers == workload.graph.linearize()
        # Weighted shapes are all constructible (LayerShape validated on
        # build) and have positive output geometry.
        assert all(layer.output_positions > 0 for layer in layers)

    def test_node_bounds_are_respected(self):
        for seed in range(20):
            graph = fuzz_graph(seed, min_nodes=4, max_nodes=9)
            # Atomic attention blocks may overshoot by at most their size-1.
            assert 4 <= len(graph) <= 9 + 7

    def test_bad_bounds_are_rejected(self):
        with pytest.raises(ValueError, match="node bounds"):
            fuzz_graph(0, min_nodes=5, max_nodes=3)
        with pytest.raises(ValueError, match="node bounds"):
            fuzz_graph(0, min_nodes=0)

    def test_default_bounds(self):
        graph = fuzz_graph(2)
        assert DEFAULT_MIN_NODES <= len(graph) <= DEFAULT_MAX_NODES + 7

    def test_operator_coverage(self):
        """Across a modest seed range every IR operator occurs."""
        seen = set()
        for seed in range(150):
            for node in fuzz_graph(seed):
                seen.add(node.op)
        assert seen == set(OpKind.WEIGHTED) | set(OpKind.SIMD)


def _minimized_fixtures():
    """Minimized pathological graphs the corpus grows, pinned forever.

    The 200-seed corpus sweep across every preset and variant surfaced no
    engine divergence; these fixtures pin the structurally hardest shapes
    it reaches so any future regression fails on a five-node reproducer
    instead of a 30-node random graph.
    """
    fixtures = []

    g = GraphBuilder("fuzz-min-self-concat")
    x = g.conv("c1", 3, 8, 3, 8)
    g.concat("cat", x, x)  # the same value concatenated with itself
    g.conv("c2", 16, 8, 3, 8, inputs="cat")
    fixtures.append(g.build())

    g = GraphBuilder("fuzz-min-collapse")
    g.conv("c1", 3, 8, 3, 4, stride=2)  # 4 -> 2
    g.conv("c2", 8, 8, 3, 2, stride=2)  # 2 -> 1
    g.conv("c3", 8, 8, 3, 1)  # 3x3 kernel on a 1x1 feature map
    fixtures.append(g.build())

    g = GraphBuilder("fuzz-min-simd-chain")
    a = g.conv("c1", 3, 8, 3, 8)
    b = g.conv("c2", 8, 8, 3, 8, inputs=a)
    c = g.conv("c3", 8, 8, 3, 8, inputs=b)
    s1 = g.add("a1", a, b)
    s2 = g.add("a2", s1, c)
    g.add("a3", s1, s2)  # an add consuming only SIMD outputs
    g.conv("c4", 8, 8, 3, 8, inputs="a3")
    fixtures.append(g.build())

    g = GraphBuilder("fuzz-min-double-softmax")
    g.matmul("m1", 4, 8, 4)
    g.softmax("s1")
    g.softmax("s2")  # softmax of a softmax: both fuse to the same anchor
    g.matmul("m2", 4, 4, 8)
    fixtures.append(g.build())

    return fixtures


class TestMinimizedFixtures:
    @pytest.mark.parametrize(
        "graph", _minimized_fixtures(), ids=lambda g: g.name
    )
    def test_fixture_conforms_on_every_engine(self, graph):
        workload = ModelWorkload.from_graph(
            graph, redundancy=0.5, activation_density=0.5
        )
        profile = profile_model(workload, seed=0)
        config = get_config("paper-28nm")
        for engine in list_engines():
            if engine.name == REFERENCE_ENGINE:
                continue
            for variant in engine.variants:
                assert_conformance(
                    engine,
                    profile,
                    config,
                    variant,
                    case=f"{graph.name}/{engine.name}/{variant}",
                )
