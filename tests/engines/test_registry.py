"""Unit tests of the engine registry itself.

Registration semantics, capability-aware resolution, error-message
contracts (unknown names list the registered engines sorted) and the
``EngineSpec`` validation rules every backend author hits first.
"""

import pytest

from repro.sim.engines import (
    EngineOutcome,
    EngineSpec,
    absent_engines,
    cycle_model_engines,
    engine_names,
    get_engine,
    list_engines,
    register_absent_engine,
    register_engine,
    resolve_cycle_model_engine,
    temporary_engine,
    unregister_engine,
)
from repro.sim.engines import jit as jit_module


def _dummy_spec(name="dummy", **overrides):
    def run_jobs(model, jobs, base_configs, variant_configs):
        raise AssertionError("not executed")

    def evaluate(profile, config, variant):
        return EngineOutcome(engine=name, compute_cycles=0.0)

    fields = dict(
        name=name,
        title="test dummy",
        run_jobs=run_jobs,
        evaluate=evaluate,
    )
    fields.update(overrides)
    return EngineSpec(**fields)


class TestBuiltins:
    def test_builtin_registration_order(self):
        assert engine_names() == ("scalar", "vectorized", "trace")

    def test_capability_flags(self):
        assert get_engine("scalar").batch is False
        assert get_engine("vectorized").batch is True
        trace = get_engine("trace")
        assert trace.cycle_model is False
        assert trace.trace_class is True

    def test_cycle_model_filter(self):
        assert cycle_model_engines() == ("scalar", "vectorized")
        assert engine_names(cycle_model=False) == ("trace",)
        assert [s.name for s in list_engines(cycle_model=True)] == [
            "scalar",
            "vectorized",
        ]


class TestResolution:
    def test_unknown_engine_lists_registered_sorted(self):
        with pytest.raises(ValueError, match="unknown engine") as exc:
            get_engine("warp")
        assert str(sorted(engine_names())) in str(exc.value)

    def test_resolve_rejects_non_cycle_model_engines(self):
        with pytest.raises(ValueError, match="not a cycle-model engine"):
            resolve_cycle_model_engine("trace")

    def test_resolve_returns_the_spec(self):
        assert resolve_cycle_model_engine("scalar") is get_engine("scalar")


class TestRegistration:
    def test_duplicate_name_is_rejected(self):
        with temporary_engine(_dummy_spec()):
            with pytest.raises(ValueError, match="already registered"):
                register_engine(_dummy_spec())

    def test_replace_overwrites(self):
        with temporary_engine(_dummy_spec()):
            replacement = _dummy_spec(title="second dummy")
            register_engine(replacement, replace=True)
            assert get_engine("dummy").title == "second dummy"

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            unregister_engine("nope")

    def test_temporary_engine_cleans_up_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with temporary_engine(_dummy_spec()):
                assert "dummy" in engine_names()
                raise RuntimeError("boom")
        assert "dummy" not in engine_names()

    def test_registered_engine_is_selectable_by_cycle_model(self):
        from repro.sim.cycle_model import CycleModel
        from repro.api.configs import get_config

        with temporary_engine(_dummy_spec()):
            model = CycleModel(get_config("paper-28nm"), engine="dummy")
            assert model.engine == "dummy"
            assert model.engine_spec.title == "test dummy"


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            _dummy_spec(name="")

    def test_cycle_model_engine_needs_run_jobs(self):
        with pytest.raises(ValueError, match="run_jobs"):
            _dummy_spec(run_jobs=None)

    def test_every_engine_needs_evaluate(self):
        with pytest.raises(ValueError, match="evaluate"):
            _dummy_spec(evaluate=None)

    def test_empty_variants_rejected(self):
        with pytest.raises(ValueError, match="no variants"):
            _dummy_spec(variants=())

    def test_cache_token_defaults_to_name(self):
        assert _dummy_spec().cache_token == "dummy"
        assert _dummy_spec(cache_token="dummy-v2").cache_token == "dummy-v2"

    def test_non_cycle_model_engine_needs_no_run_jobs(self):
        spec = _dummy_spec(cycle_model=False, batch=False, run_jobs=None)
        assert spec.run_jobs is None


class TestAbsentEngines:
    """The known-but-uninstalled tier of the registry (optional extras)."""

    def test_register_absent_requires_name_and_rejects_registered(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_absent_engine("", "pip install something")
        with pytest.raises(ValueError, match="registered"):
            register_absent_engine("vectorized", "pip install something")

    def test_absent_engine_error_carries_install_hint(self):
        register_absent_engine("phantom", "pip install 'dbpim-repro[ph]'")
        try:
            assert (
                absent_engines()["phantom"] == "pip install 'dbpim-repro[ph]'"
            )
            with pytest.raises(ValueError, match="not installed"):
                get_engine("phantom")
            with pytest.raises(ValueError, match=r"pip install 'dbpim-repro\[ph\]'"):
                get_engine("phantom")
        finally:
            absent_engines()  # returns a copy; clean the real registry
            from repro.sim.engines import _ABSENT

            _ABSENT.pop("phantom", None)

    def test_registering_promotes_out_of_absent(self):
        register_absent_engine("phantom2", "pip install x")
        register_engine(_dummy_spec(name="phantom2"))
        try:
            assert "phantom2" not in absent_engines()
            assert "phantom2" in engine_names()
        finally:
            unregister_engine("phantom2")

    @pytest.mark.skipif(
        jit_module.NUMBA_AVAILABLE, reason="numba installed: jit registered"
    )
    def test_jit_absent_without_numba(self):
        assert "jit" not in engine_names()
        assert absent_engines()["jit"] == jit_module.JIT_INSTALL_HINT
        with pytest.raises(ValueError) as excinfo:
            get_engine("jit")
        message = str(excinfo.value)
        assert "not installed" in message
        assert jit_module.JIT_INSTALL_HINT in message

    @pytest.mark.skipif(
        not jit_module.NUMBA_AVAILABLE,
        reason="numba missing: jit marked absent",
    )
    def test_jit_registered_with_numba(self):
        spec = get_engine("jit")
        assert spec.cycle_model and spec.batch
        assert spec.cache_token == jit_module.JIT_CACHE_TOKEN
        assert "jit" not in absent_engines()
