"""Tests for the experiment drivers (shape checks, not absolute numbers)."""

import pytest

from repro.arch.config import DBPIMConfig
from repro.eval.fig2_sparsity import (
    format_input_sparsity,
    format_weight_sparsity,
    input_sparsity_table,
    weight_sparsity_table,
)
from repro.eval.fig7_speedup_energy import format_table as format_fig7
from repro.eval.fig7_speedup_energy import speedup_energy_table
from repro.eval.table1_related import format_table as format_table1
from repro.eval.table1_related import ours_row, related_work_table
from repro.eval.table2_accuracy import evaluate_model_accuracy, format_table as format_table2
from repro.eval.table3_comparison import comparison_table, format_table as format_table3
from repro.eval.table4_area import area_table, format_table as format_table4


class TestFig2:
    def test_weight_sparsity_orderings(self):
        rows = weight_sparsity_table(models=("alexnet", "efficientnetb0"))
        assert len(rows) == 2
        for row in rows:
            assert 0.5 < row.binary_zero_ratio < 1.0
            assert row.csd_zero_ratio >= row.binary_zero_ratio - 0.02
            assert row.fta_zero_ratio >= row.csd_zero_ratio - 1e-9
        table = format_weight_sparsity(rows)
        assert "alexnet" in table

    def test_input_sparsity_group_monotonicity(self):
        rows = input_sparsity_table(models=("alexnet",))
        ratios = rows[0].zero_column_ratio
        assert ratios[1] >= ratios[8] >= ratios[16]
        assert "group 16" in format_input_sparsity(rows)


class TestTable1:
    def test_rows_and_ours(self):
        rows = related_work_table()
        assert len(rows) == 6
        ours = rows[-1]
        assert ours.sparsity_type == "bit"
        assert ours.weight_or_input == "W+I"
        assert ours.unstructured and ours.digital
        assert "DB-PIM" in format_table1(rows)

    def test_ours_row_follows_config(self):
        row = ours_row(DBPIMConfig().weight_sparsity_only())
        assert row.weight_or_input == "W"


class TestTable2:
    def test_single_model_accuracy_drop_is_small(self):
        row = evaluate_model_accuracy("alexnet", epochs=6, qat_epochs=1, seed=0)
        assert row.int8_accuracy > 0.5
        assert row.fta_accuracy > 0.4
        # The FTA approximation should not collapse accuracy; the paper
        # reports <1% drop, we allow a loose margin for the tiny models.
        assert row.accuracy_drop < 0.15
        assert "alexnet" in format_table2([row])


class TestFig7:
    def test_speedup_shape(self):
        rows = speedup_energy_table(models=("alexnet", "mobilenetv2"))
        by_name = {row.model: row for row in rows}
        alexnet, mobilenet = by_name["alexnet"], by_name["mobilenetv2"]
        for row in rows:
            assert row.speedup["hybrid"] > row.speedup["weight"] > 1.0
            assert row.speedup["hybrid"] > row.speedup["input"] > 1.0
            assert 0.0 < row.energy_saving["hybrid"] < 1.0
        assert alexnet.speedup["hybrid"] > mobilenet.speedup["hybrid"]
        assert alexnet.energy_saving["hybrid"] > mobilenet.energy_saving["hybrid"]
        assert "alexnet" in format_fig7(rows)


class TestTable3:
    def test_ours_column_beats_prior_works_where_claimed(self):
        columns = comparison_table(models=("alexnet", "efficientnetb0"))
        ours = columns[-1]
        priors = columns[:-1]
        assert ours.design.startswith("DB-PIM")
        # Claimed: highest utilisation, highest GOPS/macro, highest
        # efficiency per unit area.
        for value in ours.actual_utilization.values():
            assert value > 0.7
        assert ours.peak_gops_per_macro > max(p.peak_gops_per_macro for p in priors) * 0.9
        assert ours.efficiency_per_area > max(p.efficiency_per_area for p in priors)
        assert ours.die_area_mm2 < min(p.die_area_mm2 for p in priors)
        assert "DB-PIM" in format_table3(columns)


class TestTable4:
    def test_breakdown_matches_paper_shape(self):
        rows = area_table()
        by_name = {row.module: row for row in rows}
        assert by_name["Total"].area_mm2 == pytest.approx(1.15453, abs=1e-3)
        assert by_name["PIM Baseline"].breakdown == pytest.approx(0.8732, abs=0.01)
        assert by_name["Meta-RFs"].breakdown > by_name[
            "Extra Post-processing Units"
        ].breakdown
        assert by_name["Input Sparsity Support"].breakdown < 0.001
        assert "Total" in format_table4(rows)
