"""Tests for the functional building blocks (conv, pool, BN, softmax)."""

import numpy as np
import pytest

from repro.nn import functional as F


def reference_conv2d(inputs, weights, bias, stride, padding, groups=1):
    """Naive direct convolution used as the ground truth."""
    batch, in_channels, height, width = inputs.shape
    out_channels, group_in, kernel, _ = weights.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    padded = np.pad(inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    output = np.zeros((batch, out_channels, out_h, out_w))
    group_out = out_channels // groups
    for n in range(batch):
        for oc in range(out_channels):
            g = oc // group_out
            for oy in range(out_h):
                for ox in range(out_w):
                    patch = padded[
                        n,
                        g * group_in : (g + 1) * group_in,
                        oy * stride : oy * stride + kernel,
                        ox * stride : ox * stride + kernel,
                    ]
                    output[n, oc, oy, ox] = np.sum(patch * weights[oc])
    if bias is not None:
        output += bias.reshape(1, -1, 1, 1)
    return output


class TestConv2D:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(2, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=4)
        output, _ = F.conv2d_forward(inputs, weights, bias, stride, padding)
        expected = reference_conv2d(inputs, weights, bias, stride, padding)
        np.testing.assert_allclose(output, expected, rtol=1e-10, atol=1e-10)

    def test_grouped_convolution(self):
        rng = np.random.default_rng(1)
        inputs = rng.normal(size=(2, 4, 6, 6))
        weights = rng.normal(size=(8, 2, 3, 3))
        output, _ = F.conv2d_forward(inputs, weights, None, 1, 1, groups=2)
        expected = reference_conv2d(inputs, weights, None, 1, 1, groups=2)
        np.testing.assert_allclose(output, expected, rtol=1e-10, atol=1e-10)

    def test_depthwise_convolution(self):
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(1, 6, 5, 5))
        weights = rng.normal(size=(6, 1, 3, 3))
        output, _ = F.conv2d_forward(inputs, weights, None, 1, 1, groups=6)
        expected = reference_conv2d(inputs, weights, None, 1, 1, groups=6)
        np.testing.assert_allclose(output, expected, rtol=1e-10, atol=1e-10)

    def test_gradients_numerically(self):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(1, 2, 5, 5))
        weights = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=3)
        output, cache = F.conv2d_forward(inputs, weights, bias, 1, 1)
        grad_output = rng.normal(size=output.shape)
        grad_input, grad_weight, grad_bias = F.conv2d_backward(grad_output, cache)

        def loss_for_inputs(x):
            out, _ = F.conv2d_forward(x, weights, bias, 1, 1)
            return np.sum(out * grad_output)

        def loss_for_weights(w):
            out, _ = F.conv2d_forward(inputs, w, bias, 1, 1)
            return np.sum(out * grad_output)

        numeric_input = _numeric_gradient(loss_for_inputs, inputs)
        numeric_weight = _numeric_gradient(loss_for_weights, weights)
        np.testing.assert_allclose(grad_input, numeric_input, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(grad_weight, numeric_weight, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(grad_bias, grad_output.sum(axis=(0, 2, 3)))

    def test_invalid_groups_rejected(self):
        inputs = np.zeros((1, 3, 4, 4))
        weights = np.zeros((4, 3, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(inputs, weights, None, 1, 1, groups=2)

    def test_inconsistent_weight_shape_rejected(self):
        inputs = np.zeros((1, 4, 4, 4))
        weights = np.zeros((4, 3, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(inputs, weights, None, 1, 1, groups=1)


class TestIm2Col:
    def test_round_trip_shapes(self):
        rng = np.random.default_rng(4)
        inputs = rng.normal(size=(2, 3, 6, 6))
        columns, (out_h, out_w) = F.im2col(inputs, 3, 1, 1)
        assert columns.shape == (2 * 6 * 6, 3 * 9)
        assert (out_h, out_w) == (6, 6)

    def test_col2im_is_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y.
        rng = np.random.default_rng(5)
        inputs = rng.normal(size=(1, 2, 5, 5))
        columns, _ = F.im2col(inputs, 3, 2, 1)
        other = rng.normal(size=columns.shape)
        lhs = np.sum(columns * other)
        rhs = np.sum(inputs * F.col2im(other, inputs.shape, 3, 2, 1))
        assert lhs == pytest.approx(rhs)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPooling:
    def test_max_pool_known_values(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, _ = F.max_pool2d_forward(inputs, 2)
        np.testing.assert_array_equal(output[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, cache = F.max_pool2d_forward(inputs, 2)
        grad = np.ones_like(output)
        grad_input = F.max_pool2d_backward(grad, cache)
        assert grad_input.sum() == pytest.approx(4.0)
        assert grad_input[0, 0, 1, 1] == 1.0
        assert grad_input[0, 0, 0, 0] == 0.0

    def test_avg_pool_known_values(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, _ = F.avg_pool2d_forward(inputs, 2)
        np.testing.assert_array_equal(output[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_backward_distributes(self):
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, cache = F.avg_pool2d_forward(inputs, 2)
        grad_input = F.avg_pool2d_backward(np.ones_like(output), cache)
        np.testing.assert_allclose(grad_input, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        inputs = np.arange(32, dtype=float).reshape(2, 2, 2, 4)
        output, shape = F.global_avg_pool_forward(inputs)
        assert output.shape == (2, 2)
        grad = F.global_avg_pool_backward(np.ones_like(output), shape)
        np.testing.assert_allclose(grad, np.full(inputs.shape, 1 / 8))


class TestBatchNorm:
    def test_normalises_in_training(self):
        rng = np.random.default_rng(6)
        inputs = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        gamma, beta = np.ones(4), np.zeros(4)
        running_mean, running_var = np.zeros(4), np.ones(4)
        output, _ = F.batchnorm_forward(
            inputs, gamma, beta, running_mean, running_var, training=True
        )
        assert np.abs(output.mean(axis=(0, 2, 3))).max() < 1e-7
        assert np.abs(output.var(axis=(0, 2, 3)) - 1).max() < 1e-4
        # Running statistics moved toward the batch statistics.
        assert np.all(running_mean != 0)

    def test_eval_uses_running_statistics(self):
        inputs = np.ones((2, 3, 2, 2))
        gamma, beta = np.ones(3), np.zeros(3)
        running_mean, running_var = np.zeros(3), np.ones(3)
        output, _ = F.batchnorm_forward(
            inputs, gamma, beta, running_mean, running_var, training=False
        )
        np.testing.assert_allclose(output, np.ones_like(inputs), rtol=1e-4)

    def test_backward_numerically(self):
        rng = np.random.default_rng(7)
        inputs = rng.normal(size=(4, 3, 3, 3))
        gamma = rng.normal(size=3)
        beta = rng.normal(size=3)
        grad_output = rng.normal(size=inputs.shape)

        def forward_only(x, g, b):
            out, _ = F.batchnorm_forward(
                x, g, b, np.zeros(3), np.ones(3), training=True
            )
            return np.sum(out * grad_output)

        _, cache = F.batchnorm_forward(
            inputs, gamma, beta, np.zeros(3), np.ones(3), training=True
        )
        grad_input, grad_gamma, grad_beta = F.batchnorm_backward(grad_output, cache)
        numeric_input = _numeric_gradient(lambda x: forward_only(x, gamma, beta), inputs)
        numeric_gamma = _numeric_gradient(lambda g: forward_only(inputs, g, beta), gamma)
        numeric_beta = _numeric_gradient(lambda b: forward_only(inputs, gamma, b), beta)
        np.testing.assert_allclose(grad_input, numeric_input, rtol=1e-3, atol=1e-5)
        np.testing.assert_allclose(grad_gamma, numeric_gamma, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(grad_beta, numeric_beta, rtol=1e-4, atol=1e-6)


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(8)
        logits = rng.normal(size=(5, 7))
        probabilities = F.softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5))

    def test_softmax_stability(self):
        logits = np.array([[1000.0, 1000.0]])
        probabilities = F.softmax(logits)
        np.testing.assert_allclose(probabilities, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert F.cross_entropy(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_numerically(self):
        rng = np.random.default_rng(9)
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        grad = F.cross_entropy_grad(logits, labels)
        numeric = _numeric_gradient(lambda z: F.cross_entropy(z, labels), logits)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-7)


def _numeric_gradient(fn, array, eps=1e-5):
    """Central-difference numerical gradient helper."""
    gradient = np.zeros_like(array, dtype=float)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn(array)
        array[index] = original - eps
        minus = fn(array)
        array[index] = original
        gradient[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return gradient
