"""Tests for the trainable layers and composite blocks."""

import numpy as np
import pytest

from repro.core.fta import FTAConfig
from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLU,
    ReLU6,
    Residual,
    Sequential,
)


class TestConv2DLayer:
    def test_forward_shape(self):
        layer = Conv2D(3, 8, 3, stride=1, padding=1)
        output = layer(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        assert output.shape == (2, 8, 8, 8)

    def test_backward_accumulates_grads(self):
        rng = np.random.default_rng(1)
        layer = Conv2D(2, 4, 3, padding=1)
        inputs = rng.normal(size=(2, 2, 6, 6))
        output = layer(inputs)
        grad_input = layer.backward(np.ones_like(output))
        assert grad_input.shape == inputs.shape
        assert "weight" in layer.grads and "bias" in layer.grads
        assert layer.grads["weight"].shape == layer.params["weight"].shape

    def test_backward_before_forward_fails(self):
        layer = Conv2D(2, 2, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2, 2, 2)))

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3, groups=2)

    def test_qat_changes_effective_weights_only(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, 4, 3, padding=1, rng=rng)
        inputs = rng.normal(size=(1, 2, 6, 6))
        float_output = layer(inputs)
        master = layer.params["weight"].copy()
        layer.enable_qat(apply_fta=True, fta_config=FTAConfig())
        qat_output = layer(inputs)
        # Master weights untouched, outputs close but generally not identical.
        np.testing.assert_array_equal(layer.params["weight"], master)
        assert qat_output.shape == float_output.shape
        layer.disable_qat()
        np.testing.assert_allclose(layer(inputs), float_output)


class TestLinearLayer:
    def test_forward_backward(self):
        rng = np.random.default_rng(3)
        layer = Linear(8, 4, rng=rng)
        inputs = rng.normal(size=(5, 8))
        output = layer(inputs)
        assert output.shape == (5, 4)
        grad_input = layer.backward(np.ones_like(output))
        assert grad_input.shape == inputs.shape
        np.testing.assert_allclose(layer.grads["bias"], np.full(4, 5.0))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        layer = Linear(3, 2, rng=rng)
        inputs = rng.normal(size=(4, 3))
        grad_output = rng.normal(size=(4, 2))
        layer.zero_grad()
        layer(inputs)
        layer.backward(grad_output)
        eps = 1e-6
        weight = layer.params["weight"]
        numeric = np.zeros_like(weight)
        for i in range(weight.shape[0]):
            for j in range(weight.shape[1]):
                weight[i, j] += eps
                plus = np.sum(layer.forward(inputs) * grad_output)
                weight[i, j] -= 2 * eps
                minus = np.sum(layer.forward(inputs) * grad_output)
                weight[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(layer.grads["weight"], numeric, rtol=1e-5, atol=1e-7)


class TestNormalizationAndActivation:
    def test_batchnorm_train_eval_modes(self):
        layer = BatchNorm2D(4)
        inputs = np.random.default_rng(5).normal(2.0, 3.0, size=(8, 4, 4, 4))
        layer.train()
        out_train = layer(inputs)
        assert abs(out_train.mean()) < 1e-6
        layer.eval()
        out_eval = layer(inputs)
        assert out_eval.shape == inputs.shape

    def test_relu_and_relu6(self):
        inputs = np.array([[-1.0, 0.5, 7.0]])
        assert ReLU()(inputs).tolist() == [[0.0, 0.5, 7.0]]
        assert ReLU6()(inputs).tolist() == [[0.0, 0.5, 6.0]]

    def test_relu_backward_masks(self):
        layer = ReLU()
        inputs = np.array([[-1.0, 2.0]])
        layer(inputs)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]


class TestCompositeLayers:
    def test_sequential_forward_backward_shapes(self):
        model = Sequential(
            Conv2D(3, 4, 3, padding=1),
            BatchNorm2D(4),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Linear(4 * 4 * 4, 5),
        )
        inputs = np.random.default_rng(6).normal(size=(2, 3, 8, 8))
        output = model(inputs)
        assert output.shape == (2, 5)
        grad = model.backward(np.ones_like(output))
        assert grad.shape == inputs.shape

    def test_parameters_enumeration(self):
        model = Sequential(Conv2D(1, 2, 3), BatchNorm2D(2), Linear(4, 3))
        names = [name for _, name in model.parameters()]
        assert names.count("weight") == 2
        assert names.count("gamma") == 1

    def test_zero_grad(self):
        model = Sequential(Linear(4, 2))
        inputs = np.ones((3, 4))
        output = model(inputs)
        model.backward(np.ones_like(output))
        model.zero_grad()
        assert np.all(model.layers[0].grads["weight"] == 0)

    def test_residual_identity(self):
        body = Sequential(Conv2D(4, 4, 3, padding=1, bias=False))
        block = Residual(body)
        inputs = np.random.default_rng(7).normal(size=(1, 4, 5, 5))
        output = block(inputs)
        assert output.shape == inputs.shape
        grad = block.backward(np.ones_like(output))
        assert grad.shape == inputs.shape

    def test_residual_projection_shortcut(self):
        body = Sequential(Conv2D(4, 8, 3, stride=2, padding=1, bias=False))
        shortcut = Sequential(Conv2D(4, 8, 1, stride=2, bias=False))
        block = Residual(body, shortcut)
        inputs = np.random.default_rng(8).normal(size=(1, 4, 6, 6))
        output = block(inputs)
        assert output.shape == (1, 8, 3, 3)
        grad = block.backward(np.ones_like(output))
        assert grad.shape == inputs.shape

    def test_global_avg_pool_layer(self):
        layer = GlobalAvgPool()
        inputs = np.ones((2, 3, 4, 4))
        output = layer(inputs)
        np.testing.assert_allclose(output, np.ones((2, 3)))
        grad = layer.backward(np.ones((2, 3)))
        assert grad.shape == inputs.shape

    def test_train_eval_propagates(self):
        model = Sequential(Sequential(BatchNorm2D(2)), ReLU())
        model.eval()
        assert model.layers[0].layers[0].training is False
        model.train()
        assert model.layers[0].layers[0].training is True
