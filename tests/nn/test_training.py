"""Integration-style tests: data, optimizers, training and QAT transforms."""

import numpy as np
import pytest

from repro.core import csd
from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    Linear,
    ReLU,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    accuracy,
    apply_weight_override,
    batch_iterator,
    collect_weighted_layers,
    enable_model_qat,
    quantize_model,
    restore_weights,
)
from repro.nn.layers import Flatten
from repro.nn.models import MODEL_BUILDERS, build_model


@pytest.fixture(scope="module")
def small_dataset():
    return SyntheticImageDataset.generate(
        num_classes=4, samples_per_class=12, test_samples_per_class=6, image_size=8, seed=0
    )


class TestDataset:
    def test_shapes_and_labels(self, small_dataset):
        assert small_dataset.train_images.shape == (48, 3, 8, 8)
        assert small_dataset.test_images.shape == (24, 3, 8, 8)
        assert set(np.unique(small_dataset.train_labels)) == {0, 1, 2, 3}
        assert small_dataset.input_shape == (3, 8, 8)

    def test_values_in_unit_range(self, small_dataset):
        assert small_dataset.train_images.min() >= 0.0
        assert small_dataset.train_images.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = SyntheticImageDataset.generate(num_classes=2, samples_per_class=3, seed=7)
        b = SyntheticImageDataset.generate(num_classes=2, samples_per_class=3, seed=7)
        np.testing.assert_array_equal(a.train_images, b.train_images)

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate(num_classes=1)

    def test_batch_iterator_covers_everything(self, small_dataset):
        seen = 0
        for images, labels in batch_iterator(
            small_dataset.train_images, small_dataset.train_labels, 7
        ):
            assert images.shape[0] == labels.shape[0]
            seen += images.shape[0]
        assert seen == small_dataset.train_images.shape[0]

    def test_batch_iterator_invalid_batch(self, small_dataset):
        with pytest.raises(ValueError):
            list(batch_iterator(small_dataset.train_images, small_dataset.train_labels, 0))


class TestOptimizers:
    def _quadratic_model(self):
        model = Sequential(Linear(2, 1, bias=False))
        model.layers[0].params["weight"] = np.array([[2.0, -3.0]])
        return model

    def test_sgd_reduces_simple_loss(self):
        model = self._quadratic_model()
        optimizer = SGD(model, learning_rate=0.1, momentum=0.0)
        inputs = np.array([[1.0, 1.0]])
        for _ in range(50):
            optimizer.zero_grad()
            output = model(inputs)
            grad = 2 * output  # d/dy of y^2
            model.backward(grad)
            optimizer.step()
        assert abs(model(inputs)[0, 0]) < 1e-2

    def test_adam_reduces_simple_loss(self):
        model = self._quadratic_model()
        optimizer = Adam(model, learning_rate=0.1)
        inputs = np.array([[1.0, 1.0]])
        for _ in range(100):
            optimizer.zero_grad()
            output = model(inputs)
            model.backward(2 * output)
            optimizer.step()
        assert abs(model(inputs)[0, 0]) < 1e-2

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(self._quadratic_model(), learning_rate=0.0)


class TestLossHelpers:
    def test_cross_entropy_loss_callable(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        loss, grad = loss_fn(logits, np.array([0, 1]))
        assert loss > 0
        assert grad.shape == logits.shape

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestTrainer:
    def test_training_improves_accuracy(self, small_dataset):
        model = Sequential(
            Flatten(),
            Linear(3 * 8 * 8, 32),
            ReLU(),
            Linear(32, small_dataset.num_classes),
        )
        trainer = Trainer(model, small_dataset, batch_size=16)
        initial = trainer.evaluate()
        history = trainer.train(epochs=8)
        assert history.final_test_accuracy > initial
        assert history.final_test_accuracy > 0.5
        assert len(history.train_loss) == 8

    def test_qat_fine_tuning_runs(self, small_dataset):
        model = Sequential(
            Flatten(),
            Linear(3 * 8 * 8, 16),
            ReLU(),
            Linear(16, small_dataset.num_classes),
        )
        trainer = Trainer(model, small_dataset, batch_size=16)
        trainer.train(epochs=3)
        history = trainer.fine_tune_with_qat(epochs=2, apply_fta=True)
        assert len(history.test_accuracy) == 2

    def test_enable_qat_counts_layers(self, small_dataset):
        model = build_model("alexnet", num_classes=4)
        count = enable_model_qat(model)
        assert count == len(collect_weighted_layers(model))


class TestModelZoo:
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_forward_and_backward_shapes(self, name):
        model = build_model(name, num_classes=5)
        inputs = np.random.default_rng(0).normal(size=(2, 3, 16, 16))
        output = model(inputs)
        assert output.shape == (2, 5)
        grad = model.backward(np.ones_like(output))
        assert grad.shape == inputs.shape

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("lenet")

    def test_registry_matches_paper_models(self):
        assert set(MODEL_BUILDERS) == {
            "alexnet",
            "vgg19",
            "resnet18",
            "mobilenetv2",
            "efficientnetb0",
        }


class TestQuantizeModel:
    def test_records_cover_all_weighted_layers(self):
        model = build_model("resnet18", num_classes=4)
        records = quantize_model(model)
        assert len(records) == len(collect_weighted_layers(model))
        for record in records:
            assert record.int_weights.shape == record.float_weights.shape
            assert record.fta_int_weights.shape == record.float_weights.shape
            assert np.all((record.thresholds >= 0) & (record.thresholds <= 2))

    def test_fta_weights_respect_threshold(self):
        model = build_model("vgg19", num_classes=4)
        records = quantize_model(model)
        for record in records[:3]:
            flat = record.filter_major_fta_weights
            for filter_index in range(flat.shape[0]):
                counts = csd.count_nonzero_digits_array(flat[filter_index])
                assert np.all(counts <= record.thresholds[filter_index])

    def test_override_and_restore(self):
        model = build_model("alexnet", num_classes=4)
        records = quantize_model(model)
        originals = [record.float_weights.copy() for record in records]
        apply_weight_override(records, use_fta=True)
        changed = any(
            not np.array_equal(record.layer.params["weight"], original)
            for record, original in zip(records, originals)
        )
        assert changed
        restore_weights(records)
        for record, original in zip(records, originals):
            np.testing.assert_array_equal(record.layer.params["weight"], original)
