"""Tests for the stdlib HTTP façade: endpoints, payloads, error mapping.

One daemon (port 0, background serve thread) backs the endpoint tests; the
payload-validation unit tests need no server at all.  The contract pinned
here: ``/v1/run`` responses embed results byte-identical to direct
``Experiment.run`` dispatch, typed serve errors map to their HTTP statuses
(400/503/504), and shutdown drains cleanly.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.experiment import Experiment
from repro.serve import RequestValidationError, RunRequest, ServeConfig
from repro.serve.http import _request_from_payload, make_server


@pytest.fixture(scope="module")
def server():
    """One live daemon shared by the endpoint tests (port 0 = ephemeral)."""
    server = make_server(
        host="127.0.0.1",
        port=0,
        config=ServeConfig(batch_window_s=0.01),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_health(self, server):
        status, body = get(server, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_run_matches_direct_dispatch(self, server):
        status, body = post(
            server,
            "/v1/run",
            {"experiment": "fig7", "models": ["alexnet"]},
        )
        assert status == 200
        assert body["outcome"]["batch_size"] >= 1
        expected = Experiment().run("fig7", models=("alexnet",))
        assert json.dumps(body["result"], sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        )

    def test_repeat_run_hits_hot_cache(self, server):
        payload = {"experiment": "fig7", "models": ["resnet18"]}
        first = post(server, "/v1/run", payload)
        second = post(server, "/v1/run", payload)
        assert first[0] == second[0] == 200
        assert second[1]["outcome"]["cache_hit"] is True
        assert second[1]["result"] == first[1]["result"]

    def test_run_validation_maps_to_400(self, server):
        status, body = post(server, "/v1/run", {"experiment": "nope"})
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"
        assert "unknown experiment" in body["error"]["message"]

    def test_malformed_json_maps_to_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/run",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_sweep_endpoint(self, server):
        status, body = post(
            server,
            "/v1/sweep",
            {"experiments": ["fig7"], "models": ["alexnet", "resnet18"]},
        )
        assert status == 200
        assert len(body["sweep"]["results"]) == 2
        experiments = {
            result["experiment"] for result in body["sweep"]["results"]
        }
        assert experiments == {"fig7"}

    def test_sweep_unknown_parameter_maps_to_400(self, server):
        status, body = post(server, "/v1/sweep", {"wat": 1})
        assert status == 400
        assert "unknown sweep parameters" in body["error"]["message"]

    def test_metrics_endpoint(self, server):
        status, body = get(server, "/v1/metrics")
        assert status == 200
        for section in ("counters", "gauges", "latency", "derived", "service"):
            assert section in body
        assert body["counters"]["requests_total"] >= 1
        assert body["service"]["started"] is True

    def test_unknown_path_is_404(self, server):
        for method in ("GET", "POST"):
            request = urllib.request.Request(
                server.url + "/v1/nope",
                data=b"{}" if method == "POST" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 404


class TestPayloadParsing:
    def test_minimal_payload(self):
        request = _request_from_payload({"experiment": "fig7"})
        assert request == RunRequest("fig7")

    def test_full_payload(self):
        request = _request_from_payload(
            {
                "experiment": "fig7",
                "models": ["alexnet"],
                "config": "paper-28nm",
                "seed": 3,
                "engine": "scalar",
                "params": {},
                "timeout_s": 2.5,
            }
        )
        assert request.models == ("alexnet",)
        assert request.seed == 3
        assert request.engine == "scalar"
        assert request.timeout_s == 2.5

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([], "JSON object"),
            ({"experiment": 7}, "'experiment' must be a string"),
            ({"experiment": "fig7", "models": "alexnet"}, "'models'"),
            ({"experiment": "fig7", "params": []}, "'params'"),
            ({"experiment": "fig7", "seed": "zero"}, "'seed'"),
            ({"experiment": "fig7", "seed": True}, "'seed'"),
            ({"experiment": "fig7", "timeout_s": "fast"}, "'timeout_s'"),
            ({"experiment": "fig7", "wat": 1}, "unknown request fields"),
        ],
    )
    def test_rejects_malformed_fields(self, payload, match):
        with pytest.raises(RequestValidationError, match=match):
            _request_from_payload(payload)
