"""Tests for the repro.serve core: coalescing, deadlines, backpressure.

The serving contract pinned here: coalesced concurrent requests return
results **byte-identical** to one-at-a-time dispatch; deadlines surface as
typed :class:`DeadlineExceededError`; admission control rejects beyond
``max_queue`` with :class:`QueueFullError`; and a draining close finishes
every admitted request.  Everything drives plain :mod:`asyncio` (no asyncio
pytest plugin) via ``asyncio.run`` or the synchronous
:class:`ServiceRuntime` wrapper.
"""

import asyncio
import threading

import pytest

from repro.api.experiment import Experiment
from repro.serve import (
    DeadlineExceededError,
    ExperimentService,
    HotResultCache,
    LatencyWindow,
    MetricsRegistry,
    QueueFullError,
    RequestValidationError,
    RunFailedError,
    RunRequest,
    ServeConfig,
    ServiceClosedError,
    ServiceRuntime,
)

MODELS = ("alexnet", "resnet18", "mobilenetv2")


def direct_result(request: RunRequest):
    """What a one-shot Experiment.run returns for the same request."""
    session = Experiment(
        config=request.config, seed=request.seed, engine=request.engine
    )
    params = dict(request.params)
    if request.models is not None:
        params["models"] = request.models
    return session.run(request.experiment, **params)


# ---------------------------------------------------------------------------
# Request validation (no service needed)
# ---------------------------------------------------------------------------
class TestRunRequestValidation:
    def test_canonicalises_models(self):
        request = RunRequest("fig7", models=("alexnet",)).validated()
        assert request.models == ("alexnet",)
        assert request.experiment == "fig7"

    def test_models_none_expands_to_all_workloads(self):
        from repro.workloads.models import list_workloads

        request = RunRequest("fig7").validated()
        assert request.models == tuple(list_workloads())

    def test_unknown_experiment(self):
        with pytest.raises(RequestValidationError, match="unknown experiment"):
            RunRequest("nope").validated()

    def test_unknown_workload(self):
        with pytest.raises(RequestValidationError, match="unknown workload"):
            RunRequest("fig7", models=("bogus",)).validated()

    def test_unknown_config(self):
        with pytest.raises(RequestValidationError):
            RunRequest("fig7", models=MODELS, config="bogus").validated()

    def test_unknown_engine(self):
        with pytest.raises(RequestValidationError, match="unknown engine"):
            RunRequest("fig7", models=MODELS, engine="quantum").validated()

    def test_heavy_experiment_gated(self):
        with pytest.raises(RequestValidationError, match="not admitted"):
            RunRequest("table2").validated()
        # ... but admitted when the service opts in.
        assert RunRequest("table2").validated(allow_heavy=True).models

    def test_models_rejected_for_modelless_experiment(self):
        with pytest.raises(RequestValidationError, match="does not take"):
            RunRequest("table1", models=("alexnet",)).validated()

    def test_unknown_param(self):
        with pytest.raises(RequestValidationError, match="unexpected param"):
            RunRequest("fig2a", params={"wat": 1}).validated()

    def test_models_in_params_rejected(self):
        with pytest.raises(RequestValidationError, match="'models' field"):
            RunRequest("fig7", params={"models": ["alexnet"]}).validated()

    def test_empty_model_list(self):
        with pytest.raises(RequestValidationError, match="empty model list"):
            RunRequest("fig7", models=()).validated()

    def test_bad_timeout(self):
        with pytest.raises(RequestValidationError, match="timeout"):
            RunRequest("fig7", models=MODELS, timeout_s=0.0).validated()

    def test_cache_key_matches_sweep_point(self):
        request = RunRequest("fig7", models=("alexnet",)).validated()
        assert request.cache_key() == request.point().cache_key()


# ---------------------------------------------------------------------------
# Core dispatch semantics (asyncio, no plugin)
# ---------------------------------------------------------------------------
class TestServiceDispatch:
    def test_coalesced_requests_byte_identical_to_serial(self):
        """The headline contract: one merged batch == N solo runs, bytewise."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.4, hot_cache_size=0)
            )
            await service.start()
            try:
                tasks = [
                    asyncio.ensure_future(
                        service.submit(RunRequest("fig7", models=(model,)))
                    )
                    for model in MODELS
                ]
                return await asyncio.gather(*tasks)
            finally:
                await service.close()

        outcomes = asyncio.run(scenario())
        assert [o.batch_size for o in outcomes] == [len(MODELS)] * len(MODELS)
        for model, outcome in zip(MODELS, outcomes):
            expected = direct_result(RunRequest("fig7", models=(model,)))
            assert outcome.result.to_json() == expected.to_json()

    def test_cross_config_requests_coalesce_byte_identical(self):
        """Requests differing only in config share one coalesce bucket,
        ride the config-fused grid prime, and split back bytewise."""

        configs = ("paper-28nm", "dense-baseline", "weight-sparsity-only")

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.4, hot_cache_size=0)
            )
            await service.start()
            try:
                tasks = [
                    asyncio.ensure_future(
                        service.submit(
                            RunRequest(
                                "fig7", models=("alexnet",), config=config
                            )
                        )
                    )
                    for config in configs
                ]
                outcomes = await asyncio.gather(*tasks)
                return outcomes, service.metrics.snapshot()
            finally:
                await service.close()

        outcomes, metrics = asyncio.run(scenario())
        assert [o.batch_size for o in outcomes] == [len(configs)] * len(
            configs
        )
        assert metrics["counters"].get("cross_config_groups") == 1
        for config, outcome in zip(configs, outcomes):
            expected = direct_result(
                RunRequest("fig7", models=("alexnet",), config=config)
            )
            assert outcome.result.to_json() == expected.to_json()

    def test_identical_requests_deduplicate_within_batch(self):
        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.4, hot_cache_size=0)
            )
            await service.start()
            try:
                request = RunRequest("fig7", models=("alexnet",))
                tasks = [
                    asyncio.ensure_future(service.submit(request))
                    for _ in range(3)
                ]
                return await asyncio.gather(*tasks)
            finally:
                await service.close()

        outcomes = asyncio.run(scenario())
        payloads = {o.result.to_json() for o in outcomes}
        assert len(payloads) == 1  # one computation, shared by all three

    def test_incompatible_requests_do_not_merge(self):
        """Different seeds are different buckets; results stay per-seed."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.4, hot_cache_size=0)
            )
            await service.start()
            try:
                tasks = [
                    asyncio.ensure_future(
                        service.submit(
                            RunRequest("fig7", models=("alexnet",), seed=seed)
                        )
                    )
                    for seed in (0, 1)
                ]
                return await asyncio.gather(*tasks)
            finally:
                await service.close()

        outcomes = asyncio.run(scenario())
        assert [o.result.seed for o in outcomes] == [0, 1]
        for seed, outcome in zip((0, 1), outcomes):
            expected = direct_result(
                RunRequest("fig7", models=("alexnet",), seed=seed)
            )
            assert outcome.result.to_json() == expected.to_json()

    def test_deadline_expiry_is_typed(self):
        """A deadline shorter than the batch window expires while queued."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.5, hot_cache_size=0)
            )
            await service.start()
            try:
                with pytest.raises(DeadlineExceededError, match="deadline"):
                    await service.submit(
                        RunRequest(
                            "fig7", models=("alexnet",), timeout_s=0.05
                        )
                    )
                return service.metrics.counter("timeout_total")
            finally:
                await service.close()

        assert asyncio.run(scenario()) == 1

    def test_queue_full_rejection(self):
        """Beyond max_queue queued requests, admission raises QueueFullError."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(
                    max_queue=1, batch_window_s=0.0, hot_cache_size=0
                )
            )
            await service.start()
            release = threading.Event()
            original = service._execute_group

            def blocked(group):
                release.wait(timeout=30)
                return original(group)

            service._execute_group = blocked
            try:
                first = asyncio.ensure_future(
                    service.submit(RunRequest("fig7", models=("alexnet",)))
                )
                await asyncio.sleep(0.1)  # batcher now blocked in executor
                second = asyncio.ensure_future(
                    service.submit(RunRequest("fig7", models=("resnet18",)))
                )
                await asyncio.sleep(0.05)  # second fills the queue
                with pytest.raises(QueueFullError, match="queue is full"):
                    await service.submit(
                        RunRequest("fig7", models=("mobilenetv2",))
                    )
                release.set()
                outcomes = await asyncio.gather(first, second)
                rejected = service.metrics.counter("rejected_total")
                return outcomes, rejected
            finally:
                release.set()
                await service.close()

        outcomes, rejected = asyncio.run(scenario())
        assert rejected == 1
        assert [len(o.result.rows) for o in outcomes] == [1, 1]

    def test_graceful_shutdown_drains_admitted_requests(self):
        """close(drain=True) finishes queued work; new submits are refused."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.2, hot_cache_size=0)
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(
                    service.submit(RunRequest("fig7", models=(model,)))
                )
                for model in MODELS
            ]
            await asyncio.sleep(0)  # let every submit reach the queue
            await service.close(drain=True)
            outcomes = await asyncio.gather(*tasks)
            with pytest.raises(ServiceClosedError):
                await service.submit(RunRequest("fig7", models=("alexnet",)))
            return outcomes

        outcomes = asyncio.run(scenario())
        assert len(outcomes) == len(MODELS)
        for model, outcome in zip(MODELS, outcomes):
            expected = direct_result(RunRequest("fig7", models=(model,)))
            assert outcome.result.to_json() == expected.to_json()

    def test_experiment_failure_is_typed_and_isolated(self):
        """A failing run maps to RunFailedError without killing the service."""

        async def scenario():
            service = ExperimentService(
                ServeConfig(batch_window_s=0.0, hot_cache_size=0)
            )
            await service.start()
            try:
                def boom(session, pending):
                    return RunFailedError("experiment failed: boom")

                service._run_single = boom
                service._run_merged = lambda session, group: {}
                with pytest.raises(RunFailedError, match="boom"):
                    await service.submit(
                        RunRequest("fig7", models=("alexnet",))
                    )
                return service.metrics.counter("failed_total")
            finally:
                await service.close()

        assert asyncio.run(scenario()) == 1


# ---------------------------------------------------------------------------
# Caching layers
# ---------------------------------------------------------------------------
class TestServiceCaching:
    def test_hot_cache_hit_on_repeat(self):
        with ServiceRuntime(ServeConfig(batch_window_s=0.0)) as runtime:
            request = RunRequest("fig7", models=("alexnet",))
            first = runtime.run(request)
            second = runtime.run(request)
        assert not first.cache_hit
        assert second.cache_hit and second.batch_size == 0
        assert second.result.to_json() == first.result.to_json()

    def test_disk_cache_layer(self, tmp_path):
        config = ServeConfig(
            batch_window_s=0.0, hot_cache_size=0, cache_dir=tmp_path
        )
        request = RunRequest("fig7", models=("alexnet",))
        with ServiceRuntime(config) as runtime:
            first = runtime.run(request)
        assert list(tmp_path.iterdir())  # result persisted
        # A fresh runtime (hot cache disabled) serves from disk.
        with ServiceRuntime(config) as runtime:
            second = runtime.run(request)
            hits = runtime.metrics()["counters"].get("disk_cache_hits", 0)
        assert hits == 1
        assert second.result.to_json() == first.result.to_json()

    def test_packed_store_layer(self, tmp_path):
        """The hot-cache miss path falls through to the packed store."""
        from repro.store import DATA_FILENAME, PackedResultStore

        config = ServeConfig(
            batch_window_s=0.0,
            hot_cache_size=0,
            cache_dir=tmp_path,
            cache_backend="packed",
        )
        request = RunRequest("fig7", models=("alexnet",))
        with ServiceRuntime(config) as runtime:
            first = runtime.run(request)
        assert (tmp_path / DATA_FILENAME).exists()  # result packed
        assert len(PackedResultStore(tmp_path)) == 1
        # A fresh runtime (hot cache disabled) serves from the store.
        with ServiceRuntime(config) as runtime:
            second = runtime.run(request)
            hits = runtime.metrics()["counters"].get("disk_cache_hits", 0)
        assert hits == 1
        assert second.result.to_json() == first.result.to_json()

    def test_packed_store_shared_with_sweep(self, tmp_path):
        """A sweep-populated pack serves the daemon, and vice versa."""
        from repro.api import run_sweep

        swept = run_sweep(
            experiments=("fig7",),
            models=("alexnet",),
            cache_dir=tmp_path,
            executor="serial",
            cache_backend="packed",
        )
        config = ServeConfig(
            batch_window_s=0.0,
            hot_cache_size=0,
            cache_dir=tmp_path,
            cache_backend="packed",
        )
        with ServiceRuntime(config) as runtime:
            outcome = runtime.run(RunRequest("fig7", models=("alexnet",)))
            hits = runtime.metrics()["counters"].get("disk_cache_hits", 0)
        assert hits == 1
        assert outcome.result.to_json() == swept.results[0].to_json()

    def test_unknown_cache_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            ServeConfig(cache_backend="sqlite")

    def test_metrics_snapshot_shape(self):
        with ServiceRuntime(ServeConfig(batch_window_s=0.0)) as runtime:
            runtime.run(RunRequest("fig7", models=("alexnet",)))
            snapshot = runtime.metrics()
        assert snapshot["counters"]["requests_ok"] == 1
        assert snapshot["derived"]["coalesce_ratio"] == 1.0
        assert snapshot["latency"]["request"]["count"] == 1
        assert snapshot["service"]["sessions"] == 1


# ---------------------------------------------------------------------------
# Components: hot cache and metrics registry
# ---------------------------------------------------------------------------
class TestHotResultCache:
    def test_ttl_expiry(self):
        clock = [0.0]
        cache = HotResultCache(capacity=4, ttl_s=10.0, clock=lambda: clock[0])
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock[0] = 10.0
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = HotResultCache(capacity=2, ttl_s=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_capacity_zero_disables(self):
        cache = HotResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_invalidate(self):
        cache = HotResultCache(capacity=4, ttl_s=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") == 1
        assert cache.invalidate("a") == 0
        assert cache.invalidate() == 1  # clears 'b'

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HotResultCache(capacity=-1)
        with pytest.raises(ValueError):
            HotResultCache(ttl_s=0.0)


class TestMetrics:
    def test_latency_window_percentiles(self):
        window = LatencyWindow()
        for value in range(1, 101):
            window.record(value / 100.0)
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_s"] == pytest.approx(0.50, abs=0.02)
        assert snapshot["p99_s"] == pytest.approx(0.99, abs=0.02)
        assert snapshot["max_s"] == pytest.approx(1.0)

    def test_registry_derived_ratios(self):
        registry = MetricsRegistry()
        registry.increment("batches_total", 2)
        registry.increment("batched_requests_total", 6)
        registry.increment("cache_hits", 3)
        registry.increment("cache_misses", 1)
        registry.increment("timeout_total")
        registry.set_gauge("queue_depth", 4)
        registry.observe("request", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["derived"]["coalesce_ratio"] == 3.0
        assert snapshot["derived"]["cache_hit_rate"] == 0.75
        assert snapshot["derived"]["errors_total"] == 1
        assert snapshot["gauges"]["queue_depth"] == 4.0
        assert snapshot["latency"]["request"]["count"] == 1

    def test_empty_registry_snapshot(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot["derived"]["coalesce_ratio"] == 0.0
        assert snapshot["derived"]["cache_hit_rate"] == 0.0


# ---------------------------------------------------------------------------
# ServiceRuntime wrapper
# ---------------------------------------------------------------------------
class TestServiceRuntime:
    def test_threaded_submits_coalesce_and_match_serial(self):
        """Concurrent OS threads (the HTTP shape) coalesce bitwise-correctly."""
        config = ServeConfig(batch_window_s=0.3, hot_cache_size=0)
        outcomes = {}
        with ServiceRuntime(config) as runtime:
            def submit(model):
                outcomes[model] = runtime.run(
                    RunRequest("fig7", models=(model,))
                )

            threads = [
                threading.Thread(target=submit, args=(model,))
                for model in MODELS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            ratio = runtime.metrics()["derived"]["coalesce_ratio"]
        assert set(outcomes) == set(MODELS)
        for model, outcome in outcomes.items():
            expected = direct_result(RunRequest("fig7", models=(model,)))
            assert outcome.result.to_json() == expected.to_json()
        assert ratio >= 1.0  # coalescing is timing-dependent across threads

    def test_run_after_close_raises(self):
        runtime = ServiceRuntime(ServeConfig(batch_window_s=0.0)).start()
        runtime.close()
        with pytest.raises(ServiceClosedError):
            runtime.run(RunRequest("fig7", models=("alexnet",)))

    def test_serve_config_validation(self):
        for kwargs in (
            {"max_queue": 0},
            {"batch_window_s": -1.0},
            {"default_timeout_s": 0.0},
            {"hot_cache_size": -1},
        ):
            with pytest.raises(ValueError):
                ServeConfig(**kwargs)
