"""Tests for the cycle-level performance model and system metrics."""

import pytest

from repro.arch.config import DBPIMConfig
from repro.sim.cycle_model import SPARSITY_VARIANTS, CycleModel
from repro.sim.metrics import compute_metrics, peak_throughput_tops
from repro.workloads import get_workload, profile_model


@pytest.fixture(scope="module")
def alexnet_runs():
    profile = profile_model(get_workload("alexnet"), seed=0)
    model = CycleModel()
    return model, profile, model.run_all_variants(profile)


@pytest.fixture(scope="module")
def efficientnet_runs():
    profile = profile_model(get_workload("efficientnetb0"), seed=0)
    model = CycleModel()
    return model, profile, model.run_all_variants(profile)


class TestCycleModel:
    def test_all_variants_produced(self, alexnet_runs):
        _, _, runs = alexnet_runs
        assert set(runs) == set(SPARSITY_VARIANTS)
        for performance in runs.values():
            assert performance.total_cycles > 0
            assert performance.total_energy_pj > 0
            assert performance.total_macs == runs["base"].total_macs

    def test_speedup_ordering(self, alexnet_runs):
        model, _, runs = alexnet_runs
        base = runs["base"]
        input_speedup = model.speedup(base, runs["input"])
        weight_speedup = model.speedup(base, runs["weight"])
        hybrid_speedup = model.speedup(base, runs["hybrid"])
        assert 1.0 < input_speedup < weight_speedup < hybrid_speedup
        # Paper ballpark: AlexNet weight-only ~5x, hybrid ~7.7x.
        assert 3.0 < weight_speedup < 10.0
        assert 5.0 < hybrid_speedup < 12.0

    def test_energy_saving_ordering(self, alexnet_runs):
        model, _, runs = alexnet_runs
        base = runs["base"]
        assert (
            model.energy_saving(base, runs["hybrid"])
            > model.energy_saving(base, runs["weight"])
            > model.energy_saving(base, runs["input"])
            > 0.0
        )
        assert 0.5 < model.energy_saving(base, runs["hybrid"]) < 0.95

    def test_utilization_improves_with_weight_sparsity(self, alexnet_runs):
        _, _, runs = alexnet_runs
        assert runs["base"].actual_utilization < 0.55
        assert runs["hybrid"].actual_utilization > 0.7

    def test_standard_model_beats_compact_model(self, alexnet_runs, efficientnet_runs):
        model, _, alexnet = alexnet_runs
        _, _, efficientnet = efficientnet_runs
        alexnet_speedup = model.speedup(alexnet["base"], alexnet["hybrid"])
        efficientnet_speedup = model.speedup(
            efficientnet["base"], efficientnet["hybrid"]
        )
        assert alexnet_speedup > efficientnet_speedup
        # Compact models still accelerate meaningfully (paper: 3.55x).
        assert efficientnet_speedup > 2.0

    def test_unknown_variant_rejected(self, alexnet_runs):
        model, profile, _ = alexnet_runs
        with pytest.raises(ValueError):
            model.run_model(profile, "bogus")

    def test_layer_breakdown_consistency(self, alexnet_runs):
        _, profile, runs = alexnet_runs
        hybrid = runs["hybrid"]
        assert len(hybrid.layers) == len(profile.layers)
        assert sum(l.cycles for l in hybrid.layers) == pytest.approx(
            hybrid.total_cycles
        )
        breakdown = hybrid.energy_breakdown()
        assert sum(breakdown.values()) == pytest.approx(hybrid.total_energy_pj)


class TestMetrics:
    def test_peak_throughput(self):
        config = DBPIMConfig()
        sparse_peak = peak_throughput_tops(config, threshold=2)
        dense_peak = peak_throughput_tops(config.dense_baseline())
        assert sparse_peak > dense_peak
        assert sparse_peak / dense_peak == pytest.approx(4.0)
        assert peak_throughput_tops(config, threshold=1) == pytest.approx(
            2 * sparse_peak
        )

    def test_table3_style_metrics(self, alexnet_runs):
        _, _, runs = alexnet_runs
        hybrid = compute_metrics(runs["hybrid"])
        base = compute_metrics(runs["base"])
        assert hybrid.actual_utilization > 0.7 > base.actual_utilization
        assert hybrid.peak_gops_per_macro > base.peak_gops_per_macro
        assert hybrid.tops_per_watt > base.tops_per_watt
        assert hybrid.tops_per_watt_per_mm2 > base.tops_per_watt_per_mm2
        assert hybrid.latency_ms < base.latency_ms
        assert hybrid.energy_uj < base.energy_uj
        assert hybrid.area_mm2 > base.area_mm2  # sparsity support costs area

    def test_energy_efficiency_in_paper_ballpark(self, alexnet_runs):
        _, _, runs = alexnet_runs
        hybrid = compute_metrics(runs["hybrid"])
        # Paper: 18.14-45.20 TOPS/W system-level energy efficiency.
        assert 10.0 < hybrid.tops_per_watt < 60.0
