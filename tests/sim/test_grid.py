"""Config-fused grid kernel: pinned bitwise-equal to the per-job path.

:func:`repro.sim.vectorized.simulate_grid` evaluates ONE flattened profile
against a whole configuration grid in a single (config, layer) broadcast
pass.  Its entire contract is *bitwise* equality with the legacy per-job
path (``simulate_jobs(..., fuse=False)``, which replicates the profile once
per configuration): every cycle count, activity counter and energy
component, for every registered preset, every Fig. 7 variant, every stock
workload and a seeded fuzz corpus.  Exact ``==`` comparisons, no
tolerances.  Also pinned here: the identity-memoised
:func:`~repro.sim.vectorized.config_knobs` extraction and the
:meth:`~repro.sim.cycle_model.CycleModel.prime` hand-off memo the fused
sweep/serve path is built on.
"""

import dataclasses

import numpy as np
import pytest

from repro.api.configs import get_config, list_configs
from repro.arch.energy import EnergyModel
from repro.sim.cycle_model import SPARSITY_VARIANTS, CycleModel
from repro.sim.vectorized import (
    CONFIG_KNOBS_CACHE_SIZE,
    config_knobs,
    profile_arrays,
    simulate_grid,
    simulate_jobs,
)
from repro.workloads import get_workload, list_workloads, profile_model
from repro.workloads.fuzz import fuzz_workload

FUZZ_SMOKE_SEEDS = tuple(range(8))


@pytest.fixture(scope="module")
def profiles():
    return {
        name: profile_model(get_workload(name), seed=0)
        for name in list_workloads()
    }


@pytest.fixture(scope="module")
def energy_model():
    return EnergyModel()


def preset_variant_grid():
    """Every registered preset under every Fig. 7 variant, in grid order."""
    return [
        get_config(preset).for_variant(variant)
        for preset in list_configs()
        for variant in SPARSITY_VARIANTS
    ]


def assert_activity_bitwise_equal(fused, reference):
    """Exact equality of two BatchActivity results, field by field."""
    assert np.array_equal(fused.cycles, reference.cycles)
    assert np.array_equal(fused.cell_activations, reference.cell_activations)
    assert np.array_equal(
        fused.effective_cell_activations,
        reference.effective_cell_activations,
    )
    assert np.array_equal(fused.macs, reference.macs)
    assert set(fused.energy) == set(reference.energy)
    for component, values in fused.energy.items():
        assert np.array_equal(values, reference.energy[component]), component


class TestGridBitwiseEquality:
    @pytest.mark.parametrize("workload", sorted(list_workloads()))
    def test_grid_matches_per_job_on_full_preset_grid(
        self, profiles, energy_model, workload
    ):
        arrays = profile_arrays(profiles[workload])
        configs = preset_variant_grid()
        fused = simulate_grid(arrays, configs, energy_model)
        reference = simulate_jobs(
            [arrays] * len(configs), configs, energy_model, fuse=False
        )
        assert len(fused.cycles) == len(configs) * len(arrays)
        assert_activity_bitwise_equal(fused, reference)

    def test_single_config_grid_matches(self, profiles, energy_model):
        arrays = profile_arrays(profiles["alexnet"])
        configs = [get_config("paper-28nm")]
        fused = simulate_grid(arrays, configs, energy_model)
        reference = simulate_jobs([arrays], configs, energy_model, fuse=False)
        assert_activity_bitwise_equal(fused, reference)

    def test_empty_config_grid_rejected(self, profiles, energy_model):
        arrays = profile_arrays(profiles["alexnet"])
        with pytest.raises(ValueError):
            simulate_grid(arrays, [], energy_model)

    def test_fused_jobs_match_unfused_across_mixed_segments(
        self, profiles, energy_model
    ):
        # A job list interleaving two profiles: the fused path partitions
        # it into identity segments (one grid pass each) and concatenates;
        # the result must be byte-identical to the flat unfused pass.
        first = profile_arrays(profiles["alexnet"])
        second = profile_arrays(profiles["mobilenetv2"])
        configs = preset_variant_grid()[:6]
        job_arrays = (
            [first] * len(configs) + [second] * len(configs) + [first]
        )
        job_configs = configs + configs + [configs[0]]
        fused = simulate_jobs(job_arrays, job_configs, energy_model)
        reference = simulate_jobs(
            job_arrays, job_configs, energy_model, fuse=False
        )
        assert_activity_bitwise_equal(fused, reference)

    def test_grid_matches_scalar_reference_through_cycle_model(self):
        # Belt and braces: the fused path end to end (run_batch with an
        # explicit cross-config grid) against the scalar ground truth.
        profile = profile_model(get_workload("alexnet"), seed=0)
        base = get_config("paper-28nm")
        configs = [
            base.for_variant(variant) for variant in SPARSITY_VARIANTS
        ]
        jobs = [(profile, variant) for variant in SPARSITY_VARIANTS]
        fused = CycleModel(base).run_batch(jobs, configs=configs)
        scalar = CycleModel(base, engine="scalar").run_batch(jobs)
        for fused_run, scalar_run in zip(fused, scalar):
            assert fused_run == scalar_run


class TestFuzzSmoke:
    @pytest.mark.parametrize("seed", FUZZ_SMOKE_SEEDS)
    def test_fuzzed_workloads_bitwise(self, seed, energy_model):
        workload = fuzz_workload(seed)
        profile = profile_model(workload, seed=seed)
        arrays = profile_arrays(profile)
        configs = [
            get_config(preset).for_variant(variant)
            for preset in ("paper-28nm", "dense-baseline")
            for variant in SPARSITY_VARIANTS
        ]
        fused = simulate_grid(arrays, configs, energy_model)
        reference = simulate_jobs(
            [arrays] * len(configs), configs, energy_model, fuse=False
        )
        assert_activity_bitwise_equal(fused, reference)


class TestConfigKnobs:
    def test_values_match_attribute_extraction(self):
        config = get_config("paper-28nm")
        knobs = config_knobs(config)
        assert knobs == (
            int(config.macro.rows),
            int(config.macro.columns),
            int(config.macro.input_bits),
            int(config.macro.weight_bits),
            int(config.num_macros),
            bool(config.weight_sparsity),
            bool(config.input_sparsity),
        )

    def test_memoised_per_live_object(self):
        config = get_config("paper-28nm")
        assert config_knobs(config) is config_knobs(config)

    def test_equal_but_distinct_objects_get_their_own_entry(self):
        config = get_config("paper-28nm")
        clone = dataclasses.replace(config)
        assert clone is not config
        assert config_knobs(clone) == config_knobs(config)
        # Both stay served by identity after the second insert.
        assert config_knobs(config) is config_knobs(config)
        assert config_knobs(clone) is config_knobs(clone)

    def test_correct_beyond_cache_capacity(self):
        base = get_config("paper-28nm")
        clones = [
            dataclasses.replace(base, num_macros=1 + (i % 7))
            for i in range(CONFIG_KNOBS_CACHE_SIZE + 8)
        ]
        for clone in clones:
            assert config_knobs(clone)[4] == clone.num_macros


class TestPrimeHandOff:
    def _jobs(self):
        profile = profile_model(get_workload("alexnet"), seed=0)
        return [(profile, variant) for variant in SPARSITY_VARIANTS]

    def test_primed_results_served_bitwise_and_consumed_once(self):
        jobs = self._jobs()
        reference = CycleModel().run_batch(jobs)
        model = CycleModel()
        model.prime(jobs, reference)
        assert model._primed
        served = model.run_batch(jobs)
        assert served == reference
        assert not model._primed  # hand-off, not a cache
        assert model.run_batch(jobs) == reference  # recomputed path

    def test_partial_prime_merges_with_computed_jobs(self):
        jobs = self._jobs()
        reference = CycleModel().run_batch(jobs)
        model = CycleModel()
        model.prime(jobs[:2], reference[:2])
        assert model.run_batch(jobs) == reference

    def test_identity_miss_recomputes_correctly(self):
        jobs = self._jobs()
        reference = CycleModel().run_batch(jobs)
        model = CycleModel()
        model.prime(jobs, reference)
        # A re-profiled (equal but distinct) profile must not be served
        # from the memo -- and must still compute the right answer.
        fresh_profile = profile_model(get_workload("alexnet"), seed=0)
        fresh_jobs = [(fresh_profile, variant) for variant in SPARSITY_VARIANTS]
        assert model.run_batch(fresh_jobs) == reference

    def test_length_mismatch_rejected(self):
        jobs = self._jobs()
        reference = CycleModel().run_batch(jobs)
        with pytest.raises(ValueError):
            CycleModel().prime(jobs, reference[:1])

    def test_explicit_configs_bypass_the_memo(self):
        jobs = self._jobs()
        base = get_config("paper-28nm")
        configs = [
            base.for_variant(variant) for variant in SPARSITY_VARIANTS
        ]
        reference = CycleModel(base).run_batch(jobs, configs=configs)
        model = CycleModel(base)
        model.prime(jobs, reference)
        assert model.run_batch(jobs, configs=configs) == reference
        assert model._primed  # untouched: explicit grids never consume
