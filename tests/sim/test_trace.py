"""Trace-vs-analytical equivalence suite and trace simulator tests.

The contract (see ``docs/compiler.md``): for every registered hardware
preset, every workload and every Fig. 7 sparsity variant, replaying the
compiled whole-model program on the trace simulator reproduces the
analytical cycle model's per-model broadcast cycles within
``TRACE_TOLERANCE`` (the Q16.16 quantisation bound of the ``cycles_q16``
broadcast operand).
"""

import pytest

from repro.api.configs import get_config, list_configs
from repro.compiler.pipeline import compile_model
from repro.sim.cycle_model import CycleModel, SPARSITY_VARIANTS
from repro.sim.metrics import CycleBreakdown
from repro.sim.trace import (
    TRACE_TOLERANCE,
    ProgramTrace,
    TraceSimulator,
    relative_cycle_error,
)
from repro.workloads.models import get_workload, list_workloads
from repro.workloads.profiles import profile_model


@pytest.fixture(scope="module")
def profiles():
    return {
        model: profile_model(get_workload(model), seed=0)
        for model in list_workloads()
    }


@pytest.mark.parametrize("preset", list_configs())
def test_trace_matches_analytical_cycles(preset, profiles):
    """The acceptance grid: every preset x workload x variant agrees."""
    config = get_config(preset)
    cycle_model = CycleModel(config)
    simulator = TraceSimulator(config)
    for model, profile in profiles.items():
        analytical = cycle_model.run_all_variants(profile)
        for variant in SPARSITY_VARIANTS:
            compiled = compile_model(profile, config=config, variant=variant)
            trace = simulator.run(compiled)
            error = relative_cycle_error(trace, analytical[variant])
            assert error <= TRACE_TOLERANCE, (
                f"{preset}/{model}/{variant}: trace {trace.compute_cycles} vs "
                f"analytical {analytical[variant].total_cycles} "
                f"(rel err {error:.3e})"
            )
            # The stream self-describes its compute cycles exactly.
            assert trace.compute_cycles == pytest.approx(
                compiled.expected_compute_cycles
            )


class TestTraceInternals:
    @pytest.fixture(scope="class")
    def traced(self, profiles):
        simulator = TraceSimulator()
        compiled = compile_model(profiles["alexnet"], variant="hybrid")
        return compiled, simulator.run(compiled)

    def test_per_layer_cycles_match_analytical_layers(self, profiles, traced):
        _, trace = traced
        performance = CycleModel().run_model(profiles["alexnet"], "hybrid")
        assert len(trace.layers) == len(performance.layers)
        for layer_trace, layer_perf in zip(trace.layers, performance.layers):
            assert layer_trace.name == layer_perf.layer.name
            assert layer_trace.breakdown.compute == pytest.approx(
                layer_perf.cycles, rel=TRACE_TOLERANCE
            )

    def test_breakdown_accounting_is_consistent(self, traced):
        _, trace = traced
        breakdown = trace.breakdown
        assert breakdown.total == pytest.approx(
            breakdown.serial - breakdown.hidden
        )
        assert breakdown.total >= breakdown.compute
        assert 0.0 <= breakdown.hidden_fraction < 1.0
        assert trace.total_cycles == pytest.approx(
            sum(l.breakdown.total for l in trace.layers)
        )

    def test_buffer_occupancy_tracking(self, traced):
        compiled, trace = traced
        buffers = compiled.config.buffers
        by_name = {info.name: info for info in compiled.layers}
        for layer in trace.layers:
            # Feature tiles are bounded by the macro's row depth and always
            # fit; hoisting guarantees the whole weight/metadata footprint
            # fits its buffer (that is the hoist legality condition).
            assert 0 < layer.peak_feature_buffer_bytes <= buffers.feature_buffer
            assert layer.peak_weight_buffer_bytes > 0
            if by_name[layer.name].hoisted:
                assert layer.peak_weight_buffer_bytes <= buffers.weight_buffer
                assert layer.peak_meta_buffer_bytes <= buffers.meta_buffer
            assert layer.dispatches >= layer.instructions

    def test_overlap_hides_cycles_for_double_buffered_layers(self, traced):
        compiled, trace = traced
        by_name = {info.name: info for info in compiled.layers}
        for layer in trace.layers:
            info = by_name[layer.name]
            if info.double_buffered and layer.breakdown.load > 0:
                assert layer.breakdown.hidden > 0
            if not info.double_buffered and not info.hoisted:
                assert layer.breakdown.hidden == 0

    def test_run_model_convenience(self, profiles):
        trace = TraceSimulator().run_model(profiles["alexnet"], "base")
        assert isinstance(trace, ProgramTrace)
        assert trace.variant == "base"
        assert trace.compute_cycles > 0

    def test_mismatched_results_rejected(self, profiles, traced):
        _, trace = traced
        other = CycleModel().run_model(profiles["alexnet"], "base")
        with pytest.raises(ValueError, match="mismatched"):
            relative_cycle_error(trace, other)

    def test_invalid_simulator_parameters(self):
        with pytest.raises(ValueError):
            TraceSimulator(bytes_per_cycle=0)
        with pytest.raises(ValueError):
            TraceSimulator(simd_lanes=0)


class TestGraphWorkloads:
    """Graph-native workloads (residual CNNs + transformers) keep the
    trace-vs-analytical contract and expose residual branch traffic."""

    @pytest.fixture(scope="class")
    def graph_profiles(self):
        return {
            model: profile_model(get_workload(model), seed=0)
            for model in list_workloads(family="transformer")
        }

    def test_transformers_respect_trace_contract(self, graph_profiles):
        cycle_model = CycleModel()
        simulator = TraceSimulator()
        for model, profile in graph_profiles.items():
            analytical = cycle_model.run_all_variants(profile)
            for variant in SPARSITY_VARIANTS:
                compiled = compile_model(profile, variant=variant)
                trace = simulator.run(compiled)
                error = relative_cycle_error(trace, analytical[variant])
                assert error <= TRACE_TOLERANCE, (
                    f"{model}/{variant}: rel err {error:.3e}"
                )

    def test_residual_traffic_reported_for_joins(self, profiles):
        compiled = compile_model(profiles["resnet18"], variant="hybrid")
        trace = TraceSimulator().run(compiled)
        assert trace.residual_feature_bytes > 0
        by_name = {layer.name: layer for layer in trace.layers}
        # The join fuses into the block's second conv; its epilogue streams
        # the parked branch operand back through the feature path.
        assert by_name["layer1.0.conv2"].residual_feature_bytes == 64 * 32 * 32
        assert by_name["stem"].residual_feature_bytes == 0

    def test_linear_workloads_have_no_residual_traffic(self, profiles):
        compiled = compile_model(profiles["alexnet"], variant="hybrid")
        trace = TraceSimulator().run(compiled)
        assert trace.residual_feature_bytes == 0


class TestCycleBreakdown:
    def test_merge_and_dict_round_trip(self):
        a = CycleBreakdown(compute=10.0, feature_load=4.0, hidden=2.0)
        b = CycleBreakdown(compute=5.0, simd=1.0)
        merged = a.merged(b)
        assert merged.compute == 15.0
        assert merged.feature_load == 4.0
        assert merged.simd == 1.0
        assert merged.hidden == 2.0
        payload = merged.as_dict()
        assert payload["total"] == pytest.approx(merged.total)
        assert payload["compute"] == 15.0

    def test_empty_breakdown_edges(self):
        empty = CycleBreakdown()
        assert empty.serial == 0.0
        assert empty.total == 0.0
        assert empty.hidden_fraction == 0.0
