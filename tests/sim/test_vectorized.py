"""Equivalence suite: the vectorized engine is pinned to the scalar engine.

The vectorized NumPy kernel must be *bitwise* identical to the per-layer
scalar reference -- every cycle count, activity counter and energy component
of every layer, for every registered hardware preset, every workload and
every Fig. 7 sparsity variant.  Exact ``==`` comparisons, no tolerances.
"""

import pytest

from repro.api.configs import get_config, list_configs
from repro.sim import ProfileArrays
from repro.sim.cycle_model import DEFAULT_ENGINE, ENGINES, SPARSITY_VARIANTS, CycleModel
from repro.workloads import get_workload, list_workloads, profile_model


@pytest.fixture(scope="module")
def profiles():
    return {name: profile_model(get_workload(name), seed=0) for name in list_workloads()}


def _assert_layer_equal(scalar_layer, vector_layer):
    assert vector_layer.layer == scalar_layer.layer
    assert vector_layer.cycles == scalar_layer.cycles
    assert vector_layer.cell_activations == scalar_layer.cell_activations
    assert (
        vector_layer.effective_cell_activations
        == scalar_layer.effective_cell_activations
    )
    assert vector_layer.macs == scalar_layer.macs
    assert vector_layer.energy.as_dict() == scalar_layer.energy.as_dict()


class TestEngineEquivalence:
    @pytest.mark.parametrize("preset", list_configs())
    def test_bitwise_identical_on_every_preset(self, profiles, preset):
        config = get_config(preset)
        scalar = CycleModel(config, engine="scalar")
        vector = CycleModel(config, engine="vectorized")
        for profile in profiles.values():
            scalar_runs = scalar.run_all_variants(profile)
            vector_runs = vector.run_all_variants(profile)
            for variant in SPARSITY_VARIANTS:
                s, v = scalar_runs[variant], vector_runs[variant]
                assert v.name == s.name and v.variant == s.variant
                assert len(v.layers) == len(s.layers)
                for scalar_layer, vector_layer in zip(s.layers, v.layers):
                    _assert_layer_equal(scalar_layer, vector_layer)
                assert v.total_cycles == s.total_cycles
                assert v.total_energy_pj == s.total_energy_pj
                assert v.actual_utilization == s.actual_utilization

    def test_run_model_matches_run_batch(self, profiles):
        model = CycleModel()
        profile = profiles["alexnet"]
        single = model.run_model(profile, "hybrid")
        (batched,) = model.run_batch([(profile, "hybrid")])
        assert single.total_cycles == batched.total_cycles
        assert single.total_energy_pj == batched.total_energy_pj

    def test_batch_spans_models_variants_and_configs(self, profiles):
        model = CycleModel()
        jobs, configs = [], []
        for name in ("alexnet", "mobilenetv2"):
            for variant in SPARSITY_VARIANTS:
                for preset in ("paper-28nm", "paper-28nm-8macro"):
                    jobs.append((profiles[name], variant))
                    configs.append(get_config(preset))
        batched = model.run_batch(jobs, configs=configs)
        assert len(batched) == len(jobs)
        for (profile, variant), config, result in zip(jobs, configs, batched):
            reference = CycleModel(config, engine="scalar").run_model(
                profile, variant
            )
            assert result.total_cycles == reference.total_cycles
            assert result.total_energy_pj == reference.total_energy_pj

    def test_scalar_batch_fallback_matches(self, profiles):
        scalar = CycleModel(engine="scalar")
        profile = profiles["alexnet"]
        batched = scalar.run_batch([(profile, v) for v in SPARSITY_VARIANTS])
        for variant, result in zip(SPARSITY_VARIANTS, batched):
            reference = scalar.run_model(profile, variant)
            assert result.total_cycles == reference.total_cycles


class TestEngineSelection:
    def test_default_engine_is_vectorized(self):
        assert DEFAULT_ENGINE == "vectorized"
        assert CycleModel().engine == "vectorized"
        assert set(ENGINES) == {"scalar", "vectorized"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CycleModel(engine="turbo")

    def test_mismatched_configs_length_rejected(self, profiles):
        model = CycleModel()
        with pytest.raises(ValueError, match="configs"):
            model.run_batch(
                [(profiles["alexnet"], "hybrid")], configs=[model.config] * 2
            )

    def test_empty_batch(self):
        assert CycleModel().run_batch([]) == []

    def test_unknown_variant_rejected_in_batch(self, profiles):
        with pytest.raises(ValueError, match="unknown variant"):
            CycleModel().run_batch([(profiles["alexnet"], "bogus")])


class TestProfileArrays:
    def test_arrays_align_with_profile(self, profiles):
        profile = profiles["resnet18"]
        arrays = ProfileArrays.from_profile(profile)
        assert len(arrays) == len(profile.layers)
        for index, layer_profile in enumerate(profile.layers):
            assert arrays.layers[index] is layer_profile.layer
            assert arrays.out_channels[index] == layer_profile.layer.out_channels
            assert arrays.threshold_counts[index].sum() == len(
                layer_profile.thresholds
            )

    def test_mismatched_threshold_count_rejected(self, profiles):
        # The scalar mapper raises on profiles whose per-filter threshold
        # list does not match the filter count; the vectorized engine must
        # reject them too rather than silently producing different numbers.
        import dataclasses

        profile = profiles["alexnet"]
        bad_layer = dataclasses.replace(profile.layers[0], thresholds=(1, 2))
        bad_profile = dataclasses.replace(
            profile, layers=(bad_layer,) + profile.layers[1:]
        )
        with pytest.raises(ValueError, match="thresholds"):
            ProfileArrays.from_profile(bad_profile)
        with pytest.raises(ValueError, match="thresholds"):
            CycleModel(engine="scalar").run_model(bad_profile, "hybrid")

    def test_out_of_range_thresholds_rejected(self, profiles):
        import dataclasses

        profile = profiles["alexnet"]
        bad_layer = dataclasses.replace(
            profile.layers[0],
            thresholds=(9,) * profile.layers[0].layer.out_channels,
        )
        bad_profile = dataclasses.replace(
            profile, layers=(bad_layer,) + profile.layers[1:]
        )
        with pytest.raises(ValueError, match="thresholds"):
            ProfileArrays.from_profile(bad_profile)

    def test_arrays_memoised_per_profile_object(self, profiles):
        model = CycleModel()
        profile = profiles["alexnet"]
        first = model._arrays_for(profile)
        assert model._arrays_for(profile) is first
