"""Tests for the packed sweep result store (``repro.store``).

Pins the PR-9 contracts: corruption tolerance (a torn data tail or a
damaged/missing/stale index never loses intact records -- the index is
rebuilt from the data file), single-writer locking (live-holder rejection,
stale-lock reclaim), per-file-to-packed migration, byte-identical
``SweepResult`` s across the ``files`` and ``packed`` backends, and slim
journal resume restoring results byte-for-byte through the store.
"""

import json
import os
import pickle
import struct
import warnings

import pytest

from repro.api import Experiment, build_grid, run_sweep
from repro.api.sweep import SweepJournal, cache_keys_for_grid
from repro.store import (
    DATA_FILENAME,
    INDEX_FILENAME,
    PackedResultStore,
    PackedStoreError,
    PackedStoreLockedError,
    migrate_files_to_packed,
)

GRID_KWARGS = dict(experiments=("fig7", "table4"), models=("alexnet", "mobilenetv2"))


@pytest.fixture(scope="module")
def results_by_key():
    """A handful of real (cache_key, ExperimentResult) pairs to store."""
    session = Experiment()
    grid = build_grid(**GRID_KWARGS)
    keys = cache_keys_for_grid(grid)
    pairs = {}
    for key, point in zip(keys, grid):
        pairs[key] = session.run(point.experiment, **point.params)
    return pairs


def _populate(tmp_path, results_by_key):
    store = PackedResultStore(tmp_path)
    store.append_many(list(results_by_key.items()))
    return store


class TestRoundTrip:
    def test_append_probe_get_many(self, tmp_path, results_by_key):
        store = _populate(tmp_path, results_by_key)
        keys = list(results_by_key)
        assert store.probe(keys + ["absent"]) == frozenset(keys)
        fetched = store.get_many(keys)
        assert fetched == results_by_key
        assert store.get(keys[0]) == results_by_key[keys[0]]
        assert store.get("absent") is None
        assert len(store) == len(keys)

    def test_fresh_instance_reads_index_from_disk(
        self, tmp_path, results_by_key
    ):
        _populate(tmp_path, results_by_key)
        reader = PackedResultStore(tmp_path)
        assert reader.get_many(results_by_key) == results_by_key

    def test_append_is_idempotent_per_key(self, tmp_path, results_by_key):
        store = _populate(tmp_path, results_by_key)
        size = store.data_path.stat().st_size
        locations = store.append_many(list(results_by_key.items()))
        assert store.data_path.stat().st_size == size  # nothing re-written
        assert set(locations) == set(results_by_key)

    def test_locate_covers_present_keys_only(self, tmp_path, results_by_key):
        store = _populate(tmp_path, results_by_key)
        keys = list(results_by_key)
        locations = store.locate(keys + ["absent"])
        assert set(locations) == set(keys)
        offset, length = locations[keys[0]]
        assert offset > 0 and length > 0

    def test_maybe_refresh_sees_other_writer(self, tmp_path, results_by_key):
        keys = list(results_by_key)
        first, rest = keys[:1], keys[1:]
        writer = PackedResultStore(tmp_path)
        writer.append_many([(first[0], results_by_key[first[0]])])
        reader = PackedResultStore(tmp_path)
        assert reader.probe(keys) == frozenset(first)
        writer2 = PackedResultStore(tmp_path)  # a separate process, in spirit
        writer2.append_many([(k, results_by_key[k]) for k in rest])
        reader.maybe_refresh()
        assert reader.probe(keys) == frozenset(keys)


class TestCorruptionRecovery:
    def test_truncated_tail_keeps_intact_records(
        self, tmp_path, results_by_key
    ):
        store = _populate(tmp_path, results_by_key)
        keys = list(results_by_key)
        locations = store.locate(keys)
        last_key = max(keys, key=lambda k: locations[k][0])
        data = store.data_path.read_bytes()
        store.data_path.write_bytes(data[:-7])  # tear the final record
        fresh = PackedResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="rebuilding|damaged"):
            present = fresh.probe(keys)
        assert present == frozenset(k for k in keys if k != last_key)
        fetched = fresh.get_many(keys)
        assert fetched == {
            k: results_by_key[k] for k in keys if k != last_key
        }

    def test_corrupted_index_rebuilds_from_data(
        self, tmp_path, results_by_key
    ):
        store = _populate(tmp_path, results_by_key)
        store.index_path.write_text("{ not json", encoding="utf-8")
        fresh = PackedResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="unreadable pack index"):
            assert fresh.probe(results_by_key) == frozenset(results_by_key)
        assert fresh.get_many(results_by_key) == results_by_key

    def test_missing_index_rebuilds_silently(self, tmp_path, results_by_key):
        store = _populate(tmp_path, results_by_key)
        store.index_path.unlink()
        fresh = PackedResultStore(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fresh.probe(results_by_key) == frozenset(results_by_key)
        assert fresh.rebuild_index() == len(results_by_key)
        assert fresh.index_path.exists()

    def test_stale_index_after_unindexed_append_rescans(
        self, tmp_path, results_by_key
    ):
        keys = list(results_by_key)
        first, last = keys[:-1], keys[-1]
        store = _populate(tmp_path, {k: results_by_key[k] for k in first})
        # Simulate a writer that died after appending but before replacing
        # the index: append a raw record without touching pack.index.
        payload = pickle.dumps(
            (last, results_by_key[last]), protocol=pickle.HIGHEST_PROTOCOL
        )
        import zlib

        with open(store.data_path, "ab") as handle:
            handle.write(struct.pack("<II", zlib.crc32(payload), len(payload)))
            handle.write(payload)
        fresh = PackedResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="rebuilding"):
            assert fresh.probe(keys) == frozenset(keys)
        assert fresh.get_many([last]) == {last: results_by_key[last]}

    def test_bad_magic_raises(self, tmp_path):
        (tmp_path / DATA_FILENAME).write_bytes(b"not a pack at all")
        with pytest.raises(PackedStoreError, match="bad magic"):
            PackedResultStore(tmp_path).probe(["key"])

    def test_damaged_record_read_is_a_miss(self, tmp_path, results_by_key):
        store = _populate(tmp_path, results_by_key)
        keys = list(results_by_key)
        locations = store.locate(keys)
        victim = keys[0]
        offset, _ = locations[victim]
        data = bytearray(store.data_path.read_bytes())
        data[offset + 12] ^= 0xFF  # flip a payload byte; CRC now mismatches
        store.data_path.write_bytes(bytes(data))
        reader = PackedResultStore(tmp_path)  # index still lists the victim
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            fetched = reader.get_many(keys)
        assert victim not in fetched
        assert fetched == {
            k: results_by_key[k] for k in keys if k != victim
        }


class TestWriterLock:
    def test_live_holder_rejects_second_writer(
        self, tmp_path, results_by_key
    ):
        store = PackedResultStore(tmp_path)
        store._acquire_lock()
        try:
            other = PackedResultStore(tmp_path)
            with pytest.raises(PackedStoreLockedError, match="live"):
                other.append_many(list(results_by_key.items()))
        finally:
            store._release_lock()

    def test_stale_lock_is_reclaimed(self, tmp_path, results_by_key):
        store = PackedResultStore(tmp_path)
        store.directory.mkdir(parents=True, exist_ok=True)
        store.lock_path.write_text("999999999\n", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="stale pack lock"):
            store.append_many(list(results_by_key.items()))
        assert not store.lock_path.exists()
        assert store.probe(results_by_key) == frozenset(results_by_key)


class TestMigration:
    def test_migrate_files_to_packed(self, tmp_path, results_by_key):
        for key, result in results_by_key.items():
            result.save(tmp_path / f"{key}.json")
        assert migrate_files_to_packed(tmp_path) == len(results_by_key)
        assert migrate_files_to_packed(tmp_path) == 0  # idempotent
        store = PackedResultStore(tmp_path)
        assert store.get_many(results_by_key) == results_by_key
        # source files stay: the per-file backend keeps working.
        assert len(list(tmp_path.glob("*.json"))) >= len(results_by_key)

    def test_migration_skips_unreadable_entries(
        self, tmp_path, results_by_key
    ):
        for key, result in results_by_key.items():
            result.save(tmp_path / f"{key}.json")
        (tmp_path / "deadbeef.json").write_text("{ torn", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="skipping unreadable"):
            assert migrate_files_to_packed(tmp_path) == len(results_by_key)


class TestBackendEquality:
    def test_files_and_packed_results_are_byte_identical(self, tmp_path):
        files_dir = tmp_path / "files"
        packed_dir = tmp_path / "packed"
        reference = run_sweep(
            **GRID_KWARGS, cache_dir=files_dir, executor="serial"
        )
        cold = run_sweep(
            **GRID_KWARGS,
            cache_dir=packed_dir,
            executor="serial",
            cache_backend="packed",
        )
        warm_files = run_sweep(
            **GRID_KWARGS, cache_dir=files_dir, executor="serial"
        )
        warm_packed = run_sweep(
            **GRID_KWARGS,
            cache_dir=packed_dir,
            executor="serial",
            cache_backend="packed",
        )
        assert cold.to_json() == reference.to_json()
        assert warm_packed.to_json() == warm_files.to_json()
        assert warm_packed.cache_hits == len(warm_packed.results)
        assert warm_packed.cache_misses == 0

    def test_migrated_cache_serves_packed_hits(self, tmp_path):
        cache = tmp_path / "cache"
        reference = run_sweep(
            **GRID_KWARGS, cache_dir=cache, executor="serial"
        )
        migrate_files_to_packed(cache)
        warm = run_sweep(
            **GRID_KWARGS,
            cache_dir=cache,
            executor="serial",
            cache_backend="packed",
        )
        # Same results bytes; the hit counters legitimately differ (the
        # cold reference computed, the migrated run was fully warm).
        assert warm.results == reference.results
        assert [r.to_dict() for r in warm.results] == [
            r.to_dict() for r in reference.results
        ]
        assert warm.cache_hits == len(warm.results)

    def test_planner_probe_matches_store_state(self, tmp_path):
        from repro.api import ShardPlanner

        cache = tmp_path / "cache"
        run_sweep(
            experiments=("table4",),
            cache_dir=cache,
            executor="serial",
            cache_backend="packed",
        )
        grid = build_grid(**GRID_KWARGS) + build_grid(experiments=("table4",))
        stored = PackedResultStore(cache).probe(cache_keys_for_grid(grid))
        expected_warm = sum(
            1 for key in cache_keys_for_grid(grid) if key in stored
        )
        planner = ShardPlanner(cache_dir=cache, cache_backend="packed")
        plan = planner.plan(grid)
        assert plan.warm_points == expected_warm  # the stored table4 points
        assert expected_warm > 0
        assert plan.cold_points == len(grid) - expected_warm

    def test_unknown_backend_rejected(self, tmp_path):
        from repro.api import ShardPlanner

        with pytest.raises(ValueError, match="unknown cache backend"):
            run_sweep(**GRID_KWARGS, cache_backend="sqlite")
        with pytest.raises(ValueError, match="unknown cache backend"):
            ShardPlanner(cache_dir=tmp_path, cache_backend="sqlite")


class TestSlimJournal:
    def test_packed_journal_uses_point_refs(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(
            **GRID_KWARGS,
            cache_dir=tmp_path / "cache",
            journal=journal,
            executor="serial",
            cache_backend="packed",
        )
        kinds = [
            json.loads(line)["kind"]
            for line in journal.read_text().splitlines()
        ]
        assert kinds[0] == "header"
        assert set(kinds[1:]) == {"point-ref"}
        for line in journal.read_text().splitlines()[1:]:
            payload = json.loads(line)
            assert "result" not in payload
            assert payload["store"]["length"] > 0

    def test_slim_resume_is_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        journal = tmp_path / "sweep.jsonl"
        reference = run_sweep(
            **GRID_KWARGS,
            cache_dir=cache,
            journal=journal,
            executor="serial",
            cache_backend="packed",
        )
        # Simulate an interruption: drop the tail of the journal, keeping
        # the header and the first journaled shard lines.
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + len(lines) // 2]))
        resumed = run_sweep(
            **GRID_KWARGS,
            cache_dir=cache,
            journal=journal,
            executor="serial",
            cache_backend="packed",
            resume=True,
        )
        # Identical results bytes; the hit counters report this
        # invocation's work (un-journaled points restore from the store as
        # hits -- the same documented semantics as the files backend).
        assert [r.to_dict() for r in resumed.results] == [
            r.to_dict() for r in reference.results
        ]
        assert resumed.stats.journaled_points > 0
        assert resumed.stats.journaled_points + resumed.cache_hits == len(
            reference.results
        )

    def test_ref_with_lost_record_recomputes(self, tmp_path):
        cache = tmp_path / "cache"
        journal = tmp_path / "sweep.jsonl"
        reference = run_sweep(
            experiments=("table4",),
            cache_dir=cache,
            journal=journal,
            executor="serial",
            cache_backend="packed",
        )
        # Destroy the store: every journal ref now dangles.
        for name in (DATA_FILENAME, INDEX_FILENAME):
            (cache / name).unlink()
        with pytest.warns(RuntimeWarning, match="cannot be read"):
            resumed = run_sweep(
                experiments=("table4",),
                cache_dir=cache,
                journal=journal,
                executor="serial",
                cache_backend="packed",
                resume=True,
            )
        assert resumed.to_json() == reference.to_json()
        assert resumed.stats.journaled_points == 0  # recomputed, not restored

    def test_full_records_still_load_alongside_refs(self, tmp_path):
        cache = tmp_path / "cache"
        journal_path = tmp_path / "sweep.jsonl"
        reference = run_sweep(
            **GRID_KWARGS,
            cache_dir=cache,
            journal=journal_path,
            executor="serial",
            cache_backend="packed",
        )
        # Rewrite one ref line as a legacy full record; load must accept
        # the mix (lock-contended shards journal in full).
        lines = journal_path.read_text().splitlines()
        payload = json.loads(lines[1])
        store = PackedResultStore(cache)
        result = store.get(payload["cache_key"])
        payload.pop("store")
        payload["kind"] = "point"
        payload["result"] = result.to_dict()
        lines[1] = json.dumps(payload, sort_keys=True)
        journal_path.write_text("".join(line + "\n" for line in lines))
        journal = SweepJournal(journal_path)
        entries = journal.load(store=store)
        assert len(entries) == len(reference.results)
        assert entries[payload["cache_key"]][0] == result


class TestLoadWithoutStore:
    def test_refs_without_store_warn_and_skip(self, tmp_path):
        cache = tmp_path / "cache"
        journal_path = tmp_path / "sweep.jsonl"
        run_sweep(
            experiments=("table4",),
            cache_dir=cache,
            journal=journal_path,
            executor="serial",
            cache_backend="packed",
        )
        journal = SweepJournal(journal_path)
        with pytest.warns(RuntimeWarning, match="no store given"):
            assert journal.load() == {}
