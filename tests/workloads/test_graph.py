"""Tests for the ModelGraph workload IR and the graph-built model zoo."""

import pytest

from repro.workloads.graph import (
    GRAPH_INPUT,
    GraphBuilder,
    GraphNode,
    GraphValidationError,
    ModelGraph,
    OpKind,
)
from repro.workloads.layers import LayerKind, LayerShape
from repro.workloads.models import (
    PAPER_MODELS,
    TRANSFORMER_MODELS,
    ModelWorkload,
    get_workload,
    list_workloads,
    workload_family,
)


def _residual_graph():
    g = GraphBuilder("tiny")
    x = g.conv("stem", 3, 16, 3, 32)
    c1 = g.conv("conv1", 16, 16, 3, 32, inputs=x)
    c2 = g.conv("conv2", 16, 16, 3, 32, inputs=c1)
    g.add("join", c2, x)
    g.linear("fc", 16, 10, inputs="join")
    return g.build()


class TestGraphValidation:
    def test_weighted_node_requires_layer(self):
        with pytest.raises(GraphValidationError, match="LayerShape"):
            GraphNode("c", OpKind.CONV, (GRAPH_INPUT,))

    def test_layer_kind_must_match_op(self):
        layer = LayerShape("c", LayerKind.LINEAR, 8, 8)
        with pytest.raises(GraphValidationError, match="does not match"):
            GraphNode("c", OpKind.CONV, (GRAPH_INPUT,), layer)

    def test_simd_node_rejects_layer(self):
        layer = LayerShape("c", LayerKind.LINEAR, 8, 8)
        with pytest.raises(GraphValidationError, match="must not carry"):
            GraphNode("a", OpKind.ADD, ("x", "y"), layer)

    def test_add_needs_two_inputs(self):
        with pytest.raises(GraphValidationError, match="at least two"):
            GraphNode("a", OpKind.ADD, ("x",))

    def test_softmax_takes_exactly_one_input(self):
        with pytest.raises(GraphValidationError, match="exactly one"):
            GraphNode("s", OpKind.SOFTMAX, ("x", "y"))

    def test_unknown_op_rejected(self):
        with pytest.raises(GraphValidationError, match="unknown op"):
            GraphNode("m", "maxpool", (GRAPH_INPUT,))

    def test_forward_edge_rejected(self):
        layer = LayerShape("a", LayerKind.LINEAR, 8, 8)
        nodes = [GraphNode("a", OpKind.LINEAR, ("b",), layer)]
        with pytest.raises(GraphValidationError, match="topological"):
            ModelGraph("bad", nodes)

    def test_duplicate_names_rejected(self):
        layer = LayerShape("a", LayerKind.LINEAR, 8, 8)
        nodes = [
            GraphNode("a", OpKind.LINEAR, (GRAPH_INPUT,), layer),
            GraphNode("a", OpKind.LINEAR, (GRAPH_INPUT,), layer),
        ]
        with pytest.raises(GraphValidationError, match="duplicate"):
            ModelGraph("bad", nodes)

    def test_reserved_input_name_rejected(self):
        layer = LayerShape(GRAPH_INPUT, LayerKind.LINEAR, 8, 8)
        nodes = [GraphNode(GRAPH_INPUT, OpKind.LINEAR, (GRAPH_INPUT,), layer)]
        with pytest.raises(GraphValidationError, match="reserved"):
            ModelGraph("bad", nodes)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError, match="no nodes"):
            ModelGraph("empty", [])

    def test_matmul_allows_two_inputs_conv_does_not(self):
        layer = LayerShape("m", LayerKind.MATMUL, 8, 8, input_size=4)
        GraphNode("m", OpKind.MATMUL, ("a", "b"), layer)  # ok
        conv = LayerShape("c", LayerKind.CONV, 8, 8, 3, 1, 4, 1)
        with pytest.raises(GraphValidationError, match="at most 1"):
            GraphNode("c", OpKind.CONV, ("a", "b"), conv)


class TestGraphStructure:
    def test_topological_order_is_insertion_order(self):
        graph = _residual_graph()
        assert [n.name for n in graph.topological_order()] == [
            "stem", "conv1", "conv2", "join", "fc",
        ]

    def test_linearize_keeps_weighted_schedule(self):
        graph = _residual_graph()
        assert [l.name for l in graph.linearize()] == [
            "stem", "conv1", "conv2", "fc",
        ]

    def test_consumers_and_edges(self):
        graph = _residual_graph()
        assert [n.name for n in graph.consumers("stem")] == ["conv1", "join"]
        assert ("conv2", "join") in graph.edges()
        assert graph.node("join").is_join
        assert [n.name for n in graph.join_nodes()] == ["join"]

    def test_output_defaults_to_last_node(self):
        assert _residual_graph().output == "fc"

    def test_output_payloads(self):
        graph = _residual_graph()
        assert graph.output_payload("stem") == 16 * 32 * 32
        assert graph.output_payload("join") == 16 * 32 * 32  # elementwise
        assert graph.output_payload(GRAPH_INPUT) == 0
        with pytest.raises(KeyError, match="unknown node"):
            graph.output_payload("nope")

    def test_concat_payload_sums_inputs(self):
        g = GraphBuilder("cat")
        a = g.conv("a", 3, 8, 3, 8)
        b = g.conv("b", 3, 8, 3, 8, inputs=GRAPH_INPUT)
        g.concat("cat", a, b)
        graph = g.build()
        assert graph.output_payload("cat") == 2 * 8 * 8 * 8


class TestMatmulLayerShape:
    def test_token_parallel_geometry(self):
        layer = LayerShape("m", LayerKind.MATMUL, 128, 64, input_size=16)
        assert layer.output_positions == 16  # tokens
        assert layer.reduction_size == 128
        assert layer.weight_count == 64 * 128
        assert layer.macs == 16 * 64 * 128
        assert layer.activation_count == 128 * 16
        assert layer.output_size == 1


class TestModelZoo:
    def test_paper_family_is_default_listing(self):
        assert list_workloads() == list(PAPER_MODELS)
        assert list_workloads(family=None) == (
            list(PAPER_MODELS) + list(TRANSFORMER_MODELS)
        )
        with pytest.raises(KeyError, match="family"):
            list_workloads(family="quantum")

    def test_family_lookup(self):
        assert workload_family("resnet18") == "paper"
        assert workload_family("vit_tiny") == "transformer"
        with pytest.raises(KeyError):
            workload_family("no-such-net")

    @pytest.mark.parametrize("name", sorted(PAPER_MODELS) + sorted(TRANSFORMER_MODELS))
    def test_every_workload_is_graph_built(self, name):
        workload = get_workload(name)
        assert workload.graph is not None
        assert workload.layers == workload.graph.linearize()

    def test_resnet18_downsample_shortcuts_restored(self):
        layers = [l.name for l in get_workload("resnet18").layers]
        for stage in ("layer2", "layer3", "layer4"):
            assert f"{stage}.0.downsample" in layers
        assert "layer1.0.downsample" not in layers  # identity shortcut
        graph = get_workload("resnet18").graph
        assert len(graph.join_nodes()) == 8  # two residual adds per stage

    def test_mobilenetv2_downsample_shortcuts_restored(self):
        workload = get_workload("mobilenetv2")
        downsamples = [
            l.name for l in workload.layers if l.name.endswith(".downsample")
        ]
        assert len(downsamples) == 3  # the three stride-2 stage entries
        for name in downsamples:
            layer = workload.graph.node(name).layer
            assert layer.kernel_size == 1 and layer.stride == 2

    def test_efficientnet_keeps_identity_residuals_only(self):
        workload = get_workload("efficientnetb0")
        assert not any(
            l.name.endswith(".downsample") for l in workload.layers
        )
        # Identity residual adds still exist (stride-1, channel-preserving).
        assert any(n.op == OpKind.ADD for n in workload.graph.simd_nodes())

    def test_join_counts_produced_inputs_only(self):
        g = GraphBuilder("double-input")
        g.conv("c", 3, 8, 3, 8)
        g.add("a", GRAPH_INPUT, GRAPH_INPUT)
        graph = g.build(output="c")
        assert not graph.node("a").is_join
        # Two-operand matmuls are genuine branch merges.
        vit = get_workload("vit_tiny").graph
        assert vit.node("block0.scores").is_join

    def test_transformer_blocks_branch_and_join(self):
        graph = get_workload("vit_tiny").graph
        block = [n for n in graph if n.name.startswith("block0.")]
        ops = {n.name.split(".", 1)[1]: n for n in block}
        # Q/K/V branch from the same input.
        assert ops["q"].inputs == ops["k"].inputs == ops["v"].inputs
        # Scores join Q and K; context joins the softmax and V.
        assert ops["scores"].inputs == ("block0.q", "block0.k")
        assert ops["context"].inputs == ("block0.softmax", "block0.v")
        # Two residual adds per block.
        assert ops["add_attn"].op == OpKind.ADD
        assert ops["add_mlp"].op == OpKind.ADD

    def test_workload_layers_must_match_graph(self):
        graph = _residual_graph()
        with pytest.raises(ValueError, match="linearize"):
            ModelWorkload(
                name="tiny",
                layers=graph.linearize()[:-1],
                redundancy=0.5,
                activation_density=0.5,
                graph=graph,
            )
