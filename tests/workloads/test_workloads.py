"""Tests for the workload descriptors and sparsity profiles."""

import numpy as np
import pytest

from repro.workloads.layers import LayerKind, LayerShape
from repro.workloads.models import PAPER_MODELS, get_workload, list_workloads
from repro.workloads.profiles import (
    profile_layer,
    profile_model,
    synthesize_activations,
    synthesize_layer_weights,
)


class TestLayerShape:
    def test_conv_geometry(self):
        layer = LayerShape("c", LayerKind.CONV, 64, 128, 3, 1, 16, 1)
        assert layer.output_size == 16
        assert layer.output_positions == 256
        assert layer.reduction_size == 64 * 9
        assert layer.macs == 256 * 128 * 576
        assert layer.weight_count == 128 * 576

    def test_linear_geometry(self):
        layer = LayerShape("fc", LayerKind.LINEAR, 512, 100)
        assert layer.output_positions == 1
        assert layer.reduction_size == 512
        assert layer.macs == 512 * 100

    def test_depthwise_geometry(self):
        layer = LayerShape("dw", LayerKind.DEPTHWISE, 32, 32, 3, 2, 16, 1)
        assert layer.reduction_size == 9
        assert layer.output_size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerShape("bad", "unknown", 3, 3)
        with pytest.raises(ValueError):
            LayerShape("bad", LayerKind.CONV, 0, 3)
        with pytest.raises(ValueError):
            LayerShape("bad", LayerKind.DEPTHWISE, 16, 32, 3)


class TestPaperModels:
    def test_all_five_models_present(self):
        assert list_workloads() == [
            "alexnet",
            "vgg19",
            "resnet18",
            "mobilenetv2",
            "efficientnetb0",
        ]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("lenet")

    @pytest.mark.parametrize("name", sorted(PAPER_MODELS))
    def test_layer_geometries_are_consistent(self, name):
        workload = get_workload(name)
        assert workload.total_macs > 1_000_000
        assert workload.total_weights > 10_000
        for layer in workload.layers:
            assert layer.output_size >= 1

    def test_redundancy_ordering_matches_paper_narrative(self):
        # Standard over-parameterised models are more redundant than compact
        # ones -- the property the FTA thresholds and speedups derive from.
        assert get_workload("alexnet").redundancy > get_workload("resnet18").redundancy
        assert get_workload("vgg19").redundancy > get_workload("mobilenetv2").redundancy
        assert get_workload("resnet18").redundancy > get_workload("efficientnetb0").redundancy

    def test_classifier_outputs_cifar100(self):
        for name in list_workloads():
            assert get_workload(name).layers[-1].out_channels == 100


class TestSynthesis:
    def test_weights_shape_and_determinism(self):
        layer = get_workload("alexnet").layers[1]
        a = synthesize_layer_weights(layer, 0.9, seed=3)
        b = synthesize_layer_weights(layer, 0.9, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.shape[0] <= 64 and a.shape[1] <= 1024

    def test_redundancy_validation(self):
        layer = get_workload("alexnet").layers[0]
        with pytest.raises(ValueError):
            synthesize_layer_weights(layer, 1.5)
        with pytest.raises(ValueError):
            synthesize_activations(layer, 0.0)

    def test_activations_are_uint8(self):
        layer = get_workload("vgg19").layers[2]
        activations = synthesize_activations(layer, 0.5, seed=1)
        assert activations.min() >= 0 and activations.max() <= 255

    def test_higher_redundancy_gives_lower_thresholds(self):
        layer = get_workload("alexnet").layers[2]
        redundant = profile_layer(layer, redundancy=0.95, activation_density=0.5)
        compact = profile_layer(layer, redundancy=0.2, activation_density=0.5)
        assert np.mean(redundant.thresholds) <= np.mean(compact.thresholds)


class TestModelProfiles:
    @pytest.fixture(scope="class")
    def alexnet_profile(self):
        return profile_model(get_workload("alexnet"), seed=0)

    @pytest.fixture(scope="class")
    def efficientnet_profile(self):
        return profile_model(get_workload("efficientnetb0"), seed=0)

    def test_profile_covers_all_layers(self, alexnet_profile):
        assert len(alexnet_profile.layers) == len(get_workload("alexnet").layers)
        for layer_profile in alexnet_profile.layers:
            assert len(layer_profile.thresholds) == layer_profile.layer.out_channels
            assert 0 <= layer_profile.input_active_columns <= 8
            assert 0 <= layer_profile.storage_utilization <= 1

    def test_standard_model_has_lower_thresholds_than_compact(
        self, alexnet_profile, efficientnet_profile
    ):
        alexnet_hist = alexnet_profile.threshold_histogram()
        efficientnet_hist = efficientnet_profile.threshold_histogram()
        alexnet_share_one = alexnet_hist.get(1, 0) / sum(alexnet_hist.values())
        efficientnet_share_one = efficientnet_hist.get(1, 0) / sum(
            efficientnet_hist.values()
        )
        assert alexnet_share_one > efficientnet_share_one

    def test_average_metrics_bounded(self, alexnet_profile):
        assert 0 < alexnet_profile.average_active_columns <= 8
        assert 0 < alexnet_profile.average_storage_utilization <= 1
